"""A Willow-style flexible RPC layer over any datagram-like transport.

Paper §2.4: "we take inspiration from the flexible RPC interface pioneered
by Willow. The RPC interface can be specialized end-to-end with network,
storage, and application-level protocols." Servers register named handlers
(which may be simulation processes touching flash, segments, or pipelines);
clients call them over UDP, HOMA, or a TCP adapter — the E12 sweep.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.common.errors import ConfigurationError, ProtocolError
from repro.overload.admission import AdmissionController, Priority
from repro.overload.queues import BoundedQueue, QueuePolicy
from repro.sim import Event, Simulator
from repro.telemetry import MetricScope
from repro.telemetry.tracing import NULL_SPAN

RPC_HEADER = 16

#: Highest shed class, hoisted so request classification does not
#: enumerate the Priority enum on every dispatch.
_MAX_PRIORITY = max(Priority).value

#: Reserved method name for coalesced batches (built into every server).
BATCH_METHOD = "rpc.batch"

#: Most sub-operations one batch may coalesce into a single round trip.
MAX_BATCH_OPS = 64


class RpcError(ProtocolError):
    """A remote handler raised, or the method does not exist."""


class RetryBudget:
    """A shared cap on retransmissions per sliding window across calls.

    Per-call retry limits bound one client process, but during an outage
    *every* concurrent call retries at once, multiplying offered load by
    ``1 + retries`` exactly when the system can least afford it. A
    budget shared across an :class:`RpcClient`'s calls caps the total
    retransmissions granted inside a trailing window; once spent, calls
    fail fast instead of amplifying the storm (the spirit of
    retry-budget designs in production RPC stacks).
    """

    def __init__(self, clock, budget: int, window: float,
                 metrics: Optional[MetricScope] = None):
        if budget < 1:
            raise ConfigurationError("retry budget must be >= 1")
        if window <= 0:
            raise ConfigurationError("retry budget window must be positive")
        self.clock = clock
        self.budget = budget
        self.window = window
        self._spends: Deque[float] = deque()
        metrics = (
            metrics if metrics is not None
            else MetricScope.standalone("rpc.retry_budget")
        )
        self._granted = metrics.counter("granted")
        self._exhausted = metrics.counter("exhausted")

    @property
    def granted(self) -> int:
        return self._granted.value

    @property
    def exhausted(self) -> int:
        return self._exhausted.value

    def remaining(self) -> int:
        self._expire()
        return self.budget - len(self._spends)

    def _expire(self) -> None:
        now = self.clock.now
        while self._spends and now - self._spends[0] > self.window:
            self._spends.popleft()

    def try_spend(self) -> bool:
        """Grant one retransmission, or refuse if the window is spent."""
        self._expire()
        if len(self._spends) < self.budget:
            self._spends.append(self.clock.now)
            self._granted.inc()
            return True
        self._exhausted.inc()
        return False


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for RPC retransmissions.

    The wait before retransmission ``n`` (0-based) is
    ``base * multiplier**n`` capped at ``max_interval``, then jittered by
    ``±jitter`` (a fraction). Jitter draws come from an RNG seeded with
    ``(seed, rpc id)``, so a run's retransmit schedule is reproducible
    while concurrent calls still decorrelate — the fix for retry storms
    the fixed retransmit interval invited.
    """

    base: float = 1e-3
    multiplier: float = 2.0
    max_interval: float = 64e-3
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base <= 0 or self.multiplier < 1 or self.max_interval < self.base:
            raise ConfigurationError("invalid retry policy intervals")
        if not 0 <= self.jitter < 1:
            raise ConfigurationError("jitter must be in [0, 1)")

    def rng_for(self, rpc_id: int) -> random.Random:
        return random.Random(f"{self.seed}/{rpc_id}")

    def interval(self, attempt: int, rng: random.Random) -> float:
        raw = min(self.base * self.multiplier ** attempt, self.max_interval)
        if self.jitter == 0:
            return raw
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


class RpcRequest:
    """The wire request: id, method name, arguments, expected reply size.

    A ``__slots__`` value object (one per call, two tuple-sized fields
    smaller than a ``__dict__``-backed dataclass) — the wire objects sit
    on the per-op fast path, so their footprint is part of the RPC cost.

    ``trace``/``parent_span`` carry the caller's sampled
    :class:`~repro.telemetry.TraceContext` (and the ``rpc.call`` span to
    parent the server's ``rpc.handle`` under) across the wire — the
    in-simulation stand-in for W3C traceparent propagation. Both stay
    ``None`` on every unsampled call.
    """

    __slots__ = ("rpc_id", "method", "args", "response_size", "priority",
                 "trace", "parent_span")

    def __init__(self, rpc_id: int, method: str, args: tuple,
                 response_size: int, priority: int = 0):
        self.rpc_id = rpc_id
        self.method = method
        self.args = args
        self.response_size = response_size
        #: Load-shedding class (:class:`repro.overload.Priority` value):
        #: 0 = user, higher = shed earlier under overload.
        self.priority = priority
        self.trace = None
        self.parent_span = None

    def __repr__(self) -> str:
        return (f"RpcRequest(rpc_id={self.rpc_id}, method={self.method!r}, "
                f"args={self.args!r}, response_size={self.response_size}, "
                f"priority={self.priority})")


class RpcResponse:
    """The wire response: matching id, result or marshalled error."""

    __slots__ = ("rpc_id", "ok", "result", "error")

    def __init__(self, rpc_id: int, ok: bool, result: Any = None,
                 error: str = ""):
        self.rpc_id = rpc_id
        self.ok = ok
        self.result = result
        self.error = error

    def __repr__(self) -> str:
        return (f"RpcResponse(rpc_id={self.rpc_id}, ok={self.ok}, "
                f"result={self.result!r}, error={self.error!r})")


class BatchOp:
    """One sub-operation inside a coalesced :data:`BATCH_METHOD` request.

    Sizes model the op's share of the wire payload: the batch request
    occupies ``RPC_HEADER + sum(request_size)`` bytes on the network and
    the response ``RPC_HEADER + sum(response_size)`` — one round trip
    amortized over every op.
    """

    __slots__ = ("method", "args", "request_size", "response_size")

    def __init__(self, method: str, args: tuple = (),
                 request_size: int = 64, response_size: int = 64):
        self.method = method
        self.args = args
        self.request_size = request_size
        self.response_size = response_size

    def __repr__(self) -> str:
        return (f"BatchOp(method={self.method!r}, args={self.args!r}, "
                f"request_size={self.request_size}, "
                f"response_size={self.response_size})")


class _DatagramAdapter:
    """Uniform sendto/recv interface over UDP and HOMA sockets.

    The socket's send/receive entry points are resolved once at
    construction (not ``hasattr``-probed per datagram), and
    :meth:`sendto` hands back the socket's generator directly instead of
    wrapping it in a delegating generator frame.
    """

    __slots__ = ("socket", "_send", "_recv")

    def __init__(self, socket: Any):
        self.socket = socket
        self._send = getattr(socket, "sendto", None) or socket.send
        self._recv = getattr(socket, "recvfrom", None) or socket.recv

    @property
    def address(self) -> str:
        return self.socket.address

    def sendto(self, dst: str, payload: Any, size: int):
        return self._send(dst, payload, size)

    def recv(self):
        return self._recv()


class RpcServer:
    """Dispatches incoming requests to registered handler processes.

    A handler is ``fn(*args)`` returning either a plain value or a generator
    (a simulation process, e.g. one that performs NVMe commands); generator
    handlers are driven to completion before the response is sent — the
    "run-to-completion data path" of §2.4.

    By default every incoming request is dispatched concurrently — an
    *implicit unbounded queue* of in-flight handlers. Passing
    ``queue_capacity`` switches the server to overload-protected mode: a
    :class:`~repro.overload.BoundedQueue` (FIFO/LIFO/CoDel) feeds a pool
    of ``workers`` run-to-completion worker processes (the wimpy-core
    datapath), excess requests are refused with an immediate cheap error
    response (backpressure the client sees instead of a timeout), and an
    optional :class:`~repro.overload.AdmissionController` sheds traffic
    by priority class before it costs any queue slot.
    """

    def __init__(
        self,
        sim: Simulator,
        socket: Any,
        admission: Optional[AdmissionController] = None,
        queue_capacity: Optional[int] = None,
        queue_policy: QueuePolicy = QueuePolicy.FIFO,
        workers: int = 1,
        codel_target: float = 5e-3,
        codel_interval: float = 10e-3,
    ):
        self.sim = sim
        self._tracer = sim.tracer
        self.transport = _DatagramAdapter(socket)
        self._handlers: Dict[str, Callable] = {}
        self._metrics = sim.telemetry.unique_scope(
            f"rpc.server.{self.transport.address}"
        )
        self._requests_served = self._metrics.counter("requests_served")
        self._shed = self._metrics.counter("requests_shed")
        self._batches_served = self._metrics.counter("batches_served")
        self._batched_ops = self._metrics.counter("batched_ops")
        self.admission = admission
        self.queue: Optional[BoundedQueue] = None
        if queue_capacity is not None:
            if workers < 1:
                raise ConfigurationError("need at least one worker")
            self.queue = BoundedQueue(
                sim, self._metrics.scope("queue"), queue_capacity,
                policy=queue_policy, codel_target=codel_target,
                codel_interval=codel_interval, on_drop=self._on_queue_drop,
            )
            for __ in range(workers):
                sim.process(self._worker_loop())
        sim.process(self._serve_loop())

    @property
    def requests_served(self) -> int:
        return self._requests_served.value

    @property
    def requests_shed(self) -> int:
        """Requests refused by admission control or queue drops."""
        return self._shed.value

    @property
    def batches_served(self) -> int:
        """Coalesced :data:`BATCH_METHOD` requests served."""
        return self._batches_served.value

    @property
    def batched_ops(self) -> int:
        """Sub-operations executed inside batch requests."""
        return self._batched_ops.value

    @property
    def address(self) -> str:
        return self.transport.address

    def register(self, method: str, handler: Callable) -> None:
        """Bind *handler* to *method*; one handler per name, no rebinding."""
        if method == BATCH_METHOD:
            raise ProtocolError(f"{BATCH_METHOD!r} is built in")
        if method in self._handlers:
            raise ProtocolError(f"handler for {method!r} already registered")
        self._handlers[method] = handler

    @staticmethod
    def _priority_of(request: RpcRequest) -> Priority:
        return Priority(max(0, min(int(request.priority), _MAX_PRIORITY)))

    def _reject(self, src: str, request: RpcRequest, reason: str):
        """Process: an immediate, header-sized overload error response."""
        response = RpcResponse(request.rpc_id, ok=False, error=reason)
        yield from self.transport.sendto(src, response, RPC_HEADER)

    def _on_queue_drop(self, item, reason: str) -> None:
        src, request = item
        self._shed.inc()
        if self.admission is not None:
            self.admission.record_overload()
        self.sim.process(
            self._reject(src, request, f"overload: dropped ({reason})")
        )

    def _serve_loop(self):
        while True:
            src, request, __ = yield self.transport.recv()
            if not isinstance(request, RpcRequest):
                continue
            if self.admission is not None and not self.admission.admit(
                self._priority_of(request)
            ):
                self._shed.inc()
                self.sim.process(
                    self._reject(src, request, "overload: admission shed")
                )
                continue
            if self.queue is not None:
                # A full queue rejects via _on_queue_drop — no hidden
                # buffering, the client learns immediately.
                self.queue.try_put((src, request))
                continue
            if request.trace is not None:
                # Resume the caller's flow on this side of the wire: the
                # handler process runs with the originating context
                # active, so its spans join the caller's trace tree.
                self.sim.process(
                    self._tracer.drive(self._handle(src, request),
                                       request.trace)
                )
            else:
                self.sim.process(self._handle(src, request))

    def _worker_loop(self):
        """One wimpy core: run-to-completion service off the queue."""
        assert self.queue is not None
        while True:
            src, request = yield self.queue.get()
            if request.trace is not None:
                yield from self._tracer.drive(
                    self._handle(src, request), request.trace
                )
            else:
                yield from self._handle(src, request)

    def _handle(self, src: str, request: RpcRequest):
        if request.method == BATCH_METHOD:
            yield from self._handle_batch(src, request)
            return
        handler = self._handlers.get(request.method)
        if handler is None:
            response = RpcResponse(
                request.rpc_id, ok=False, error=f"no method {request.method!r}"
            )
            yield from self.transport.sendto(src, response, RPC_HEADER)
            return
        # Attribute dicts for spans are only built when tracing is on;
        # the disabled path allocates nothing (NULL_SPAN is a singleton).
        tracer = self._tracer
        context = request.trace
        if context is not None:
            # Parent explicitly under the caller's rpc.call span rather
            # than whatever happens to be innermost — concurrent flows
            # through one server must not cross-link.
            span = tracer.begin(
                context, "rpc.handle", "transport",
                {"method": request.method, "server": self.transport.address},
                parent=request.parent_span,
            )
        elif tracer.enabled:
            span = tracer.span(
                "rpc.handle", "transport",
                method=request.method, server=self.transport.address,
            )
        else:
            span = NULL_SPAN
        with span:
            try:
                outcome = handler(*request.args)
                if hasattr(outcome, "send"):  # a generator: run it in sim time
                    if context is not None:
                        # The handler runs as its own process; keep it on
                        # the caller's flow across its resumptions too.
                        outcome = yield self.sim.process(
                            tracer.drive(outcome, context)
                        )
                    else:
                        outcome = yield self.sim.process(outcome)
                response = RpcResponse(request.rpc_id, ok=True, result=outcome)
            except Exception as exc:  # noqa: BLE001 - marshalled to the client
                response = RpcResponse(request.rpc_id, ok=False, error=str(exc))
            self._requests_served.inc()
            yield from self.transport.sendto(
                src, response, RPC_HEADER + request.response_size
            )

    def _handle_batch(self, src: str, request: RpcRequest):
        """Process: run every sub-op run-to-completion, answer once.

        The batch occupied exactly one admission-controller token and one
        queue slot (it is an ordinary request until it reaches a worker),
        so coalescing N ops costs the overload machinery 1/N of the
        per-op accounting — the point of batching. Sub-op failures are
        marshalled per-op; the batch response itself always succeeds.
        """
        (ops,) = request.args
        tracer = self._tracer
        context = request.trace
        if context is not None:
            span = tracer.begin(
                context, "rpc.handle", "transport",
                {"method": BATCH_METHOD, "server": self.transport.address,
                 "ops": len(ops)},
                parent=request.parent_span,
            )
        elif tracer.enabled:
            span = tracer.span(
                "rpc.handle", "transport",
                method=BATCH_METHOD, server=self.transport.address,
                ops=len(ops),
            )
        else:
            span = NULL_SPAN
        with span:
            results = []
            for position, (method, args) in enumerate(ops):
                handler = self._handlers.get(method)
                if handler is None:
                    results.append(RpcResponse(
                        position, ok=False, error=f"no method {method!r}"
                    ))
                    continue
                try:
                    outcome = handler(*args)
                    if hasattr(outcome, "send"):
                        if context is not None:
                            outcome = yield self.sim.process(
                                tracer.drive(outcome, context)
                            )
                        else:
                            outcome = yield self.sim.process(outcome)
                    results.append(RpcResponse(position, ok=True,
                                               result=outcome))
                except Exception as exc:  # noqa: BLE001 - marshalled per op
                    results.append(RpcResponse(position, ok=False,
                                               error=str(exc)))
                self._batched_ops.inc()
            self._requests_served.inc()
            self._batches_served.inc()
            response = RpcResponse(request.rpc_id, ok=True, result=results)
            yield from self.transport.sendto(
                src, response, RPC_HEADER + request.response_size
            )


class RpcClient:
    """Issues calls and matches responses by rpc id.

    ``retry_budget`` (a :class:`RetryBudget`, optionally shared between
    clients) caps total retransmissions across *all* of this client's
    concurrent calls: when the window's budget is spent, a timed-out
    call fails immediately instead of joining the retry storm.
    """

    def __init__(self, sim: Simulator, socket: Any,
                 retry_budget: Optional[RetryBudget] = None):
        self.sim = sim
        self._tracer = sim.tracer
        self.transport = _DatagramAdapter(socket)
        self.retry_budget = retry_budget
        self._pending: Dict[int, Event] = {}
        # Per-client ids: rpc ids only need to be unique within this
        # client's pending table, and a module-global counter would leak
        # state across runs into RetryPolicy's per-id jitter RNG —
        # breaking same-seed => byte-identical telemetry.
        self._rpc_ids = itertools.count()
        self._metrics = sim.telemetry.unique_scope(
            f"rpc.client.{self.transport.address}"
        )
        self._calls = self._metrics.counter("calls")
        self._batched_ops = self._metrics.counter("batched_ops")
        self._retransmits = self._metrics.counter("retransmits")
        self._deadline_exceeded = self._metrics.counter("deadline_exceeded")
        self._budget_exhausted = self._metrics.counter("retry_budget_exhausted")
        self._call_latency = self._metrics.histogram("call_latency")
        sim.process(self._rx_loop())

    @property
    def retransmits(self) -> int:
        return self._retransmits.value

    @property
    def deadline_exceeded(self) -> int:
        return self._deadline_exceeded.value

    @property
    def retry_budget_exhausted(self) -> int:
        """Calls failed fast because the shared retry budget was spent."""
        return self._budget_exhausted.value

    def _rx_loop(self):
        while True:
            __, response, __ = yield self.transport.recv()
            if isinstance(response, RpcResponse):
                waiter = self._pending.pop(response.rpc_id, None)
                if waiter is not None:
                    waiter.succeed(response)

    def call(
        self,
        server: str,
        method: str,
        *args: Any,
        request_size: int = 64,
        response_size: int = 64,
        timeout: Optional[float] = None,
        retries: int = 0,
        deadline: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
        priority: int = 0,
    ):
        """Process: one RPC; returns the handler's result or raises RpcError.

        With ``timeout`` set, an unanswered request is retransmitted up to
        ``retries`` times (needed over lossy datagram transports; handlers
        must be idempotent, as with any at-least-once RPC). A
        :class:`RetryPolicy` replaces the fixed retransmit interval with
        exponential backoff + jitter (``timeout`` then seeds the policy's
        first interval if the policy leaves ``base`` at its default).

        ``deadline`` bounds the *whole call* in simulated seconds: when the
        budget runs out — even with ``timeout=None``, which otherwise waits
        forever on a dead server — the call raises
        ``RpcError("... deadline exceeded")``.
        """
        request = RpcRequest(next(self._rpc_ids), method, args, response_size,
                             priority=priority)
        if self._tracer.enabled:
            response = yield from self._issue_traced(
                server, request, request_size, timeout, retries, deadline,
                policy,
            )
        else:
            response = yield from self._issue(
                server, request, request_size, timeout, retries, deadline,
                policy,
            )
        if not response.ok:
            raise RpcError(response.error)
        return response.result

    def call_batch(
        self,
        server: str,
        ops: "List[BatchOp]",
        *,
        timeout: Optional[float] = None,
        retries: int = 0,
        deadline: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
        priority: int = 0,
    ):
        """Process: coalesce up to :data:`MAX_BATCH_OPS` ops into one RPC.

        The whole batch travels as a single request (one network round
        trip, one admission token, one queue slot, one worker dispatch)
        and is answered with a list of per-op :class:`RpcResponse`
        objects in op order — a sub-op failure is marshalled in its slot
        instead of failing the batch. Transport-level failures (timeout,
        deadline, shed batch) raise :class:`RpcError` for the batch as a
        whole; retransmission knobs behave exactly as in :meth:`call`
        (handlers must stay idempotent).

        Args:
            server: destination address.
            ops: the :class:`BatchOp` sequence to coalesce (1..64).
            timeout/retries/deadline/policy/priority: as in :meth:`call`;
                ``priority`` classes the *whole batch* for admission.

        Returns:
            ``List[RpcResponse]``, index-aligned with *ops*.
        """
        if not 1 <= len(ops) <= MAX_BATCH_OPS:
            raise ConfigurationError(
                f"batch needs 1..{MAX_BATCH_OPS} ops, got {len(ops)}"
            )
        request_size = sum(op.request_size for op in ops)
        response_size = sum(op.response_size for op in ops)
        wire_ops = tuple((op.method, op.args) for op in ops)
        request = RpcRequest(
            next(self._rpc_ids), BATCH_METHOD, (wire_ops,), response_size,
            priority=priority,
        )
        self._batched_ops.inc(len(ops))
        if self._tracer.enabled:
            response = yield from self._issue_traced(
                server, request, request_size, timeout, retries, deadline,
                policy,
            )
        else:
            response = yield from self._issue(
                server, request, request_size, timeout, retries, deadline,
                policy,
            )
        if not response.ok:
            raise RpcError(response.error)
        return response.result

    def _issue_traced(
        self,
        server: str,
        request: RpcRequest,
        request_size: int,
        timeout: Optional[float],
        retries: int,
        deadline: Optional[float],
        policy: Optional[RetryPolicy],
    ):
        """Process: attach a flow to the request, then run :meth:`_issue`.

        An already-active flow (the enclosing generator is being driven)
        is simply carried onto the wire. With head sampling on and no
        active flow, this call *is* a new root flow: draw the sampling
        decision and, when sampled, keep the fresh context active across
        every resumption of the send/retry loop. Unsampled calls carry
        ``trace=None`` and trace nothing anywhere downstream.
        """
        tracer = self._tracer
        context = tracer.active_context
        if context is not None:
            request.trace = context
            return (yield from self._issue(
                server, request, request_size, timeout, retries, deadline,
                policy,
            ))
        if tracer.sample_rate < 1.0:
            context = tracer.flow()
            if context is not None:
                request.trace = context
                return (yield from tracer.drive(
                    self._issue(server, request, request_size, timeout,
                                retries, deadline, policy),
                    context,
                ))
        # Legacy full-rate path outside any flow: _issue's span() call
        # lands on the shared ambient context, as it always has.
        return (yield from self._issue(
            server, request, request_size, timeout, retries, deadline, policy,
        ))

    def _issue(
        self,
        server: str,
        request: RpcRequest,
        request_size: int,
        timeout: Optional[float],
        retries: int,
        deadline: Optional[float],
        policy: Optional[RetryPolicy],
    ):
        """Process: the shared send/retransmit/deadline loop for one id."""
        method = request.method
        done = Event(self.sim)
        self._pending[request.rpc_id] = done
        started = self.sim.now
        rng = policy.rng_for(request.rpc_id) if policy is not None else None
        attempts = 0
        self._calls.inc()
        tracer = self._tracer
        context = request.trace
        if context is not None:
            span = tracer.begin(
                context, "rpc.call", "transport",
                {"method": method, "server": server},
            )
            request.parent_span = span
        elif tracer.enabled:
            span = tracer.span(
                "rpc.call", "transport", method=method, server=server,
            )
        else:
            span = NULL_SPAN
        with span:
            while True:
                yield from self.transport.sendto(
                    server, request, RPC_HEADER + request_size
                )
                if timeout is None and policy is None and deadline is None:
                    response = yield done
                    break
                # How long to wait before this attempt is declared lost.
                if policy is not None:
                    wait = policy.interval(attempts, rng)
                elif timeout is not None:
                    wait = timeout
                else:
                    wait = deadline  # no retransmission: just bound the wait
                if deadline is not None:
                    remaining = deadline - (self.sim.now - started)
                    if remaining <= 0:
                        self._pending.pop(request.rpc_id, None)
                        self._deadline_exceeded.inc()
                        raise RpcError(
                            f"{method} to {server}: deadline exceeded"
                        )
                    wait = min(wait, remaining)
                outcome = yield self.sim.any_of([done, self.sim.timeout(wait)])
                if done in outcome:
                    response = done.value
                    break
                if deadline is not None and self.sim.now - started >= deadline:
                    self._pending.pop(request.rpc_id, None)
                    self._deadline_exceeded.inc()
                    raise RpcError(f"{method} to {server}: deadline exceeded")
                attempts += 1
                if timeout is None and policy is None:
                    continue  # deadline-only calls do not retransmit
                if attempts > retries:
                    self._pending.pop(request.rpc_id, None)
                    raise RpcError(
                        f"{method} to {server} timed out after "
                        f"{attempts} attempt(s)"
                    )
                if (self.retry_budget is not None
                        and not self.retry_budget.try_spend()):
                    self._pending.pop(request.rpc_id, None)
                    self._budget_exhausted.inc()
                    raise RpcError(
                        f"{method} to {server}: retry budget exhausted"
                    )
                self._retransmits.inc()
            if attempts:
                span.annotate(retransmits=attempts)
        latency = self.sim.now - started
        self._call_latency.observe(latency)
        if context is not None and tracer.exemplars:
            self._call_latency.exemplar(latency, context.trace_id)
        return response
