"""A Willow-style flexible RPC layer over any datagram-like transport.

Paper §2.4: "we take inspiration from the flexible RPC interface pioneered
by Willow. The RPC interface can be specialized end-to-end with network,
storage, and application-level protocols." Servers register named handlers
(which may be simulation processes touching flash, segments, or pipelines);
clients call them over UDP, HOMA, or a TCP adapter — the E12 sweep.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.common.errors import ProtocolError
from repro.sim import Event, Simulator

_rpc_ids = itertools.count()

RPC_HEADER = 16


class RpcError(ProtocolError):
    """A remote handler raised, or the method does not exist."""


@dataclass
class RpcRequest:
    """The wire request: id, method name, arguments, expected reply size."""

    rpc_id: int
    method: str
    args: tuple
    response_size: int


@dataclass
class RpcResponse:
    """The wire response: matching id, result or marshalled error."""

    rpc_id: int
    ok: bool
    result: Any = None
    error: str = ""


class _DatagramAdapter:
    """Uniform sendto/recv interface over UDP and HOMA sockets."""

    def __init__(self, socket: Any):
        self.socket = socket

    @property
    def address(self) -> str:
        return self.socket.address

    def sendto(self, dst: str, payload: Any, size: int):
        if hasattr(self.socket, "sendto"):
            yield from self.socket.sendto(dst, payload, size)
        else:
            yield from self.socket.send(dst, payload, size)

    def recv(self):
        if hasattr(self.socket, "recvfrom"):
            return self.socket.recvfrom()
        return self.socket.recv()


class RpcServer:
    """Dispatches incoming requests to registered handler processes.

    A handler is ``fn(*args)`` returning either a plain value or a generator
    (a simulation process, e.g. one that performs NVMe commands); generator
    handlers are driven to completion before the response is sent — the
    "run-to-completion data path" of §2.4.
    """

    def __init__(self, sim: Simulator, socket: Any):
        self.sim = sim
        self.transport = _DatagramAdapter(socket)
        self._handlers: Dict[str, Callable] = {}
        self.requests_served = 0
        sim.process(self._serve_loop())

    @property
    def address(self) -> str:
        return self.transport.address

    def register(self, method: str, handler: Callable) -> None:
        if method in self._handlers:
            raise ProtocolError(f"handler for {method!r} already registered")
        self._handlers[method] = handler

    def _serve_loop(self):
        while True:
            src, request, __ = yield self.transport.recv()
            if isinstance(request, RpcRequest):
                self.sim.process(self._handle(src, request))

    def _handle(self, src: str, request: RpcRequest):
        handler = self._handlers.get(request.method)
        if handler is None:
            response = RpcResponse(
                request.rpc_id, ok=False, error=f"no method {request.method!r}"
            )
            yield from self.transport.sendto(src, response, RPC_HEADER)
            return
        try:
            outcome = handler(*request.args)
            if hasattr(outcome, "send"):  # a generator: run it in sim time
                outcome = yield self.sim.process(outcome)
            response = RpcResponse(request.rpc_id, ok=True, result=outcome)
        except Exception as exc:  # noqa: BLE001 - marshalled to the client
            response = RpcResponse(request.rpc_id, ok=False, error=str(exc))
        self.requests_served += 1
        yield from self.transport.sendto(
            src, response, RPC_HEADER + request.response_size
        )


class RpcClient:
    """Issues calls and matches responses by rpc id."""

    def __init__(self, sim: Simulator, socket: Any):
        self.sim = sim
        self.transport = _DatagramAdapter(socket)
        self._pending: Dict[int, Event] = {}
        sim.process(self._rx_loop())

    def _rx_loop(self):
        while True:
            __, response, __ = yield self.transport.recv()
            if isinstance(response, RpcResponse):
                waiter = self._pending.pop(response.rpc_id, None)
                if waiter is not None:
                    waiter.succeed(response)

    def call(
        self,
        server: str,
        method: str,
        *args: Any,
        request_size: int = 64,
        response_size: int = 64,
        timeout: Optional[float] = None,
        retries: int = 0,
    ):
        """Process: one RPC; returns the handler's result or raises RpcError.

        With ``timeout`` set, an unanswered request is retransmitted up to
        ``retries`` times (needed over lossy datagram transports; handlers
        must be idempotent, as with any at-least-once RPC).
        """
        request = RpcRequest(next(_rpc_ids), method, args, response_size)
        done = Event(self.sim)
        self._pending[request.rpc_id] = done
        attempts = 0
        while True:
            yield from self.transport.sendto(
                server, request, RPC_HEADER + request_size
            )
            if timeout is None:
                response = yield done
                break
            outcome = yield self.sim.any_of([done, self.sim.timeout(timeout)])
            if done in outcome:
                response = done.value
                break
            attempts += 1
            if attempts > retries:
                self._pending.pop(request.rpc_id, None)
                raise RpcError(
                    f"{method} to {server} timed out after "
                    f"{attempts} attempt(s)"
                )
        if not response.ok:
            raise RpcError(response.error)
        return response.result
