"""Operating-system path costs: interrupts, syscalls, copies.

Published magnitudes for a tuned Linux server; these are the "CPU remains
in the critical path to manage data flows (data copying, I/O buffers
management)" overheads of paper §1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.cpu import CpuModel
from repro.sim import Simulator


@dataclass(frozen=True)
class OsCosts:
    """Per-operation kernel costs (interrupt, syscall, block layer)."""

    interrupt_latency: float = 4e-6  # NIC IRQ + softirq
    syscall_latency: float = 1.2e-6  # entry/exit + spectre mitigations
    block_layer_latency: float = 3e-6  # bio submit + completion
    context_switch_latency: float = 3e-6
    page_fault_latency: float = 5e-6


class OsModel:
    """Charges the kernel's share of each datapath operation."""

    def __init__(self, sim: Simulator, cpu: CpuModel, costs: OsCosts = OsCosts()):
        self.sim = sim
        self.cpu = cpu
        self.costs = costs
        self.syscalls = 0
        self.interrupts = 0
        self.bytes_copied = 0

    def receive_packet(self, size: int):
        """Process: NIC interrupt + socket read syscall + copy to user."""
        self.interrupts += 1
        yield self.sim.timeout(self.costs.interrupt_latency)
        self.syscalls += 1
        yield self.sim.timeout(self.costs.syscall_latency)
        self.bytes_copied += size
        yield from self.cpu.memcpy(size)

    def send_packet(self, size: int):
        """Process: send syscall + copy to kernel."""
        self.syscalls += 1
        yield self.sim.timeout(self.costs.syscall_latency)
        self.bytes_copied += size
        yield from self.cpu.memcpy(size)

    def write_storage(self, size: int):
        """Process: write syscall + block layer + copy to page cache."""
        self.syscalls += 1
        yield self.sim.timeout(self.costs.syscall_latency)
        yield self.sim.timeout(self.costs.block_layer_latency)
        self.bytes_copied += size
        yield from self.cpu.memcpy(size)

    def read_storage(self, size: int):
        """Process: read syscall + block layer + copy from page cache."""
        self.syscalls += 1
        yield self.sim.timeout(self.costs.syscall_latency)
        yield self.sim.timeout(self.costs.block_layer_latency)
        self.bytes_copied += size
        yield from self.cpu.memcpy(size)
