"""The CPU-mediated datapath: NIC -> kernel -> CPU -> kernel -> SSD.

Each packet handled by a conventional server costs an interrupt, syscalls,
two copies, software program execution (with jitter), and a block-layer
traversal before reaching flash — every stage the Hyperion inline path
deletes.
"""

from __future__ import annotations

from typing import Optional

from repro.baseline.cpu import CpuModel
from repro.baseline.os_model import OsModel
from repro.ebpf.vm import BpfVm
from repro.hw.nvme.commands import NvmeCommand, NvmeOpcode
from repro.hw.nvme.controller import NvmeController
from repro.sim import Simulator


class CpuCentricDatapath:
    """Packet-processing-with-persistence on a conventional server."""

    def __init__(
        self,
        sim: Simulator,
        cpu: CpuModel,
        os_model: OsModel,
        ssd: Optional[NvmeController] = None,
    ):
        self.sim = sim
        self.cpu = cpu
        self.os = os_model
        self.ssd = ssd
        self.qp = None
        if ssd is not None:
            self.qp = ssd.create_queue_pair()
            ssd.start()
        self.packets_processed = 0
        self._log_lba = 0
        self._page_cache = bytearray()

    def process_packet(self, vm: BpfVm, packet: bytes, persist: bool):
        """Process: one packet through the full CPU-centric path.

        Persistence goes through the page cache: every packet pays the
        write syscall + copy, and full 4 KiB pages flush to the device —
        the same block-granular flash traffic as the DPU log.

        Returns the program's verdict (r0).
        """
        # NIC -> kernel -> user
        yield from self.os.receive_packet(len(packet))
        # software program execution (jittery)
        result = yield from self.cpu.execute_ebpf(vm, packet)
        if persist and self.qp is not None:
            # user -> kernel -> block layer -> page cache
            yield from self.os.write_storage(len(packet))
            self._page_cache.extend(packet)
            if len(self._page_cache) >= 4096:
                block = bytes(self._page_cache[:4096])
                self._page_cache = self._page_cache[4096:]
                completion = yield self.qp.submit(
                    NvmeCommand(NvmeOpcode.WRITE, lba=self._log_lba, data=block)
                )
                assert completion.ok
                self._log_lba += 1
        self.packets_processed += 1
        return result.return_value
