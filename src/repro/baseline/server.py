"""The conventional 1U rack server Hyperion is compared against (§2).

"In comparison to a conventional 1U rack-mounted server like SuperMicro
X12, Hyperion is 5-10x more compact in volume, and 4-8x more energy
efficient with the maximum TDP energy specifications (approx. 230 Watts vs
1,600 Watts)."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class ConventionalServer:
    """A CPU-centric server's physical and power envelope."""

    name: str
    #: chassis (width, height, depth) in millimetres
    dimensions_mm: Tuple[float, float, float]
    #: maximum TDP power budget in watts, by component
    power_budget_w: Dict[str, float] = field(default_factory=dict)

    @property
    def volume_liters(self) -> float:
        w, h, d = self.dimensions_mm
        return (w * h * d) / 1e6

    @property
    def max_tdp_watts(self) -> float:
        return sum(self.power_budget_w.values())


#: SuperMicro X12-class 1U server, dual-socket max configuration.
SUPERMICRO_X12 = ConventionalServer(
    name="supermicro-x12-1u",
    dimensions_mm=(438.0, 43.0, 730.0),
    power_budget_w={
        "cpus (2x 270W TDP)": 540.0,
        "dram (32 DIMMs)": 160.0,
        "nvme (10 bays)": 120.0,
        "nics": 50.0,
        "fans+psu loss+chipset": 330.0,
        "gpu/accel headroom": 400.0,
    },
)
