"""The CPU-centric baseline Hyperion argues against.

A conventional server: NIC interrupts, syscalls, kernel/user copies, CPU
software processing with scheduling jitter, and the CPU as the mediator of
every NIC<->SSD transfer. Experiments E1/E3/E6/E9 run the same workloads
through this model and through the DPU path.
"""

from repro.baseline.cpu import CpuModel, CpuCosts
from repro.baseline.os_model import OsModel, OsCosts
from repro.baseline.server import ConventionalServer, SUPERMICRO_X12
from repro.baseline.datapath import CpuCentricDatapath

__all__ = [
    "CpuModel",
    "CpuCosts",
    "OsModel",
    "OsCosts",
    "ConventionalServer",
    "SUPERMICRO_X12",
    "CpuCentricDatapath",
]
