"""A cost-model CPU: instruction timing with scheduling interference.

The paper's predictability claim (§2): an FPGA pipeline "runs a certain
clock frequency without any outside interference", while CPU execution
shares caches, branch predictors, and run queues with everything else. The
CPU model therefore has two properties the FPGA model lacks: per-run timing
*jitter* and occasional *preemption spikes*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.ebpf.vm import BpfVm
from repro.sim import Simulator


@dataclass(frozen=True)
class CpuCosts:
    """Timing parameters of a contemporary server core."""

    clock_hz: float = 3.0e9
    instructions_per_cycle: float = 2.0
    #: multiplicative jitter from cache/TLB/SMT interference
    jitter_fraction: float = 0.15
    #: probability one execution eats a scheduler preemption
    preemption_probability: float = 0.02
    preemption_latency: float = 20e-6
    memcpy_bandwidth: float = 12e9  # bytes/s, one core

    def instruction_time(self, instructions: int) -> float:
        return instructions / (self.clock_hz * self.instructions_per_cycle)

    def memcpy_time(self, size: int) -> float:
        return size / self.memcpy_bandwidth


class CpuModel:
    """Executes eBPF programs in software with interference effects."""

    def __init__(
        self,
        sim: Simulator,
        costs: CpuCosts = CpuCosts(),
        rng: Optional[random.Random] = None,
        #: interpreter overhead vs native: ~25 host instructions per eBPF insn
        interpreter_expansion: float = 25.0,
    ):
        self.sim = sim
        self.costs = costs
        self.rng = rng if rng is not None else random.Random(42)
        self.interpreter_expansion = interpreter_expansion
        self.executions = 0

    def execution_time(self, instructions_executed: int) -> float:
        """Wall time for one program run, with jitter and preemption."""
        base = self.costs.instruction_time(
            int(instructions_executed * self.interpreter_expansion)
        )
        jitter = 1.0 + self.rng.uniform(0, self.costs.jitter_fraction)
        time = base * jitter
        if self.rng.random() < self.costs.preemption_probability:
            time += self.costs.preemption_latency
        return time

    def execute_ebpf(self, vm: BpfVm, context: bytes = b""):
        """Process: run a program on the CPU, charging simulated time."""
        result = vm.run(context)
        yield self.sim.timeout(self.execution_time(result.instructions_executed))
        self.executions += 1
        return result

    def memcpy(self, size: int):
        """Process: one software copy (the tax the DPU path never pays)."""
        yield self.sim.timeout(self.costs.memcpy_time(size))
