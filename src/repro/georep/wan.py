"""Simulated WAN links and the multi-region fabric they form.

A region is an ordinary :class:`~repro.hw.net.Network` (a star around one
switch). The :class:`WanFabric` joins regions with *directional*
:class:`WanLink` pairs — each direction has its own propagation delay and
bandwidth, because real WAN paths are asymmetric (different fiber routes,
different transit providers) and the asymmetry is exactly what partial
partitions exploit.

Routing stays the plain address-keyed switch: the fabric registers every
remote endpoint address in every other region's switch, with the
inter-region :class:`WanLink` as the egress. A frame from a client in
region B to a DPU in region A therefore travels
``client -> B.switch -> wan(B->A) -> A.switch -> dpu`` and pays the WAN
propagation exactly once per crossing.

Partitions are directional too: :meth:`WanLink.partition` (manual, or a
:data:`~repro.faults.FaultKind.WAN_PARTITION` window from a
:class:`~repro.faults.FaultPlan`) silently drops frames on that direction
only. A symmetric partition is two directional ones; a full region loss
is a partition of every link touching the region
(:meth:`WanFabric.isolate`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.units import gbps
from repro.faults import FaultInjector, FaultKind
from repro.hw.net import Network
from repro.hw.net.frames import Frame
from repro.hw.net.link import Link
from repro.hw.net.port import NetworkPort
from repro.sim import Simulator

__all__ = ["DEFAULT_WAN_BANDWIDTH", "DEFAULT_WAN_PROPAGATION",
           "WanFabric", "WanLink", "wan_component"]

#: Inter-region backbones are provisioned far below intra-rack rates.
DEFAULT_WAN_BANDWIDTH = gbps(10)

#: ~1000 km of fiber one way (5 us/km).
DEFAULT_WAN_PROPAGATION = 5e-3


def wan_component(src: str, dst: str) -> str:
    """The canonical component id for the directional link ``src -> dst``.

    This is the id :meth:`~repro.faults.FaultPlan.wan_partition` targets,
    and the path the link's telemetry counters live under.
    """
    return f"wan.{src}->{dst}"


class WanLink(Link):
    """One direction of an inter-region path, partitionable at runtime.

    On top of the base :class:`~repro.hw.net.link.Link` fault surface
    (drops, corruption, LINK_DOWN windows) a WAN link can be
    *partitioned*: every frame offered while partitioned is silently
    dropped, whether the partition came from a manual
    :meth:`partition` call or an active
    :data:`~repro.faults.FaultKind.WAN_PARTITION` window in the attached
    fault plan. The ``partitioned`` gauge and ``frames_partitioned``
    counter make the split visible in telemetry snapshots.
    """

    TX_SPAN = "wan.tx"
    TX_SUBSTRATE = "wan"

    def __init__(
        self,
        sim: Simulator,
        src: str,
        dst: str,
        bandwidth: float = DEFAULT_WAN_BANDWIDTH,
        propagation: float = DEFAULT_WAN_PROPAGATION,
        injector: Optional[FaultInjector] = None,
    ):
        super().__init__(
            sim, bandwidth, propagation,
            injector=injector, component=wan_component(src, dst),
        )
        self.src = src
        self.dst = dst
        self._manual_partition = False
        self._partitioned_gauge = self._metrics.gauge("partitioned")
        self._frames_partitioned = self._metrics.counter("frames_partitioned")

    @property
    def partitioned(self) -> bool:
        """Whether frames offered right now would be dropped by a partition."""
        if self._manual_partition:
            return True
        return (
            self.injector is not None
            and self.injector.active(self.component, FaultKind.WAN_PARTITION)
        )

    @property
    def frames_partitioned(self) -> int:
        return self._frames_partitioned.value

    def partition(self) -> None:
        """Manually partition this direction (until :meth:`heal`)."""
        self._manual_partition = True
        self._partitioned_gauge.set(1)

    def heal(self) -> None:
        self._manual_partition = False
        self._partitioned_gauge.set(0)

    def _fault_outcome(self, frame: Frame) -> Optional[str]:
        if self.partitioned:
            self._frames_partitioned.inc()
            return "drop"
        return super()._fault_outcome(frame)


class WanFabric:
    """Named regions plus the directional WAN links joining them.

    Wiring order: add regions, connect them, create endpoints, then
    :meth:`refresh` (idempotent — every helper that adds an endpoint
    calls it again). Refresh gives every region's switch an egress route
    for every *remote* address, so cross-region frames hop
    switch -> WAN link -> switch without any overlay addressing.
    """

    def __init__(self, sim: Simulator,
                 injector: Optional[FaultInjector] = None):
        self.sim = sim
        self._recorder = getattr(sim, "recorder", None)
        self.injector = injector
        self.regions: Dict[str, Network] = {}
        self.links: Dict[Tuple[str, str], WanLink] = {}
        #: (time, "partition" | "heal", src, dst) — canonical history.
        self.events: List[Tuple[float, str, str, str]] = []
        self._metrics = sim.telemetry.unique_scope("wan.fabric")
        self._partitions = self._metrics.counter("partitions")
        self._heals = self._metrics.counter("heals")

    # -- topology -------------------------------------------------------------
    def add_region(self, name: str, network: Network) -> Network:
        if name in self.regions:
            raise ConfigurationError(f"duplicate region {name!r}")
        self.regions[name] = network
        return network

    def connect(
        self,
        src: str,
        dst: str,
        *,
        bandwidth: float = DEFAULT_WAN_BANDWIDTH,
        propagation: float = DEFAULT_WAN_PROPAGATION,
    ) -> WanLink:
        """Create the directional link ``src -> dst``.

        Call twice (once per direction) to join a region pair; giving
        the directions different propagation/bandwidth models real
        asymmetric WAN paths.
        """
        for name in (src, dst):
            if name not in self.regions:
                raise ConfigurationError(f"unknown region {name!r}")
        if (src, dst) in self.links:
            raise ConfigurationError(f"link {src}->{dst} already exists")
        link = WanLink(self.sim, src, dst, bandwidth, propagation,
                       injector=self.injector)
        self.links[(src, dst)] = link
        # Frames arriving over this link are forwarded by dst's switch.
        self.regions[dst].switch.attach_ingress(link)
        return link

    def link(self, src: str, dst: str) -> WanLink:
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise ConfigurationError(f"no WAN link {src}->{dst}") from None

    def refresh(self) -> None:
        """(Re)register every remote address in every region's switch.

        Idempotent; call after creating endpoints. Frames for an address
        in region B leaving region A egress over the A->B link. A
        duplicate address across regions would make routing ambiguous,
        so it is a configuration error.
        """
        homes: Dict[str, str] = {}
        for region, network in self.regions.items():
            for address in network._ports:
                if address in homes:
                    raise ConfigurationError(
                        f"address {address!r} exists in both "
                        f"{homes[address]!r} and {region!r}"
                    )
                homes[address] = region
        for src, network in self.regions.items():
            for address, home in homes.items():
                if home == src:
                    continue
                link = self.links.get((src, home))
                if link is not None:
                    network.switch.connect_egress(address, link)

    def endpoint(self, region: str, address: str) -> NetworkPort:
        """Create (or fetch) an endpoint in *region*, refreshing routes."""
        if region not in self.regions:
            raise ConfigurationError(f"unknown region {region!r}")
        port = self.regions[region].endpoint(address)
        self.refresh()
        return port

    def region_of(self, address: str) -> Optional[str]:
        for region, network in self.regions.items():
            if address in network._ports:
                return region
        return None

    # -- partitions -----------------------------------------------------------
    def partition(self, src: str, dst: str, *, symmetric: bool = False) -> None:
        """Partition ``src -> dst`` (and the reverse when *symmetric*)."""
        self.link(src, dst).partition()
        self.events.append((self.sim.now, "partition", src, dst))
        self._partitions.inc()
        if self._recorder is not None:
            self._recorder.record(
                "wan", f"wan partition {src}->{dst} at={self.sim.now!r}"
            )
        if symmetric:
            self.partition(dst, src)

    def heal(self, src: str, dst: str, *, symmetric: bool = False) -> None:
        self.link(src, dst).heal()
        self.events.append((self.sim.now, "heal", src, dst))
        self._heals.inc()
        if self._recorder is not None:
            self._recorder.record(
                "wan", f"wan heal {src}->{dst} at={self.sim.now!r}"
            )
        if symmetric:
            self.heal(dst, src)

    def isolate(self, region: str) -> None:
        """Full region loss: partition every link into and out of *region*."""
        for src, dst in self.links:
            if region in (src, dst):
                self.partition(src, dst)

    def rejoin(self, region: str) -> None:
        for src, dst in self.links:
            if region in (src, dst):
                self.heal(src, dst)

    def events_bytes(self) -> bytes:
        """The partition/heal history as canonical bytes."""
        return "\n".join(
            f"wan {kind} {src}->{dst} at={at!r}"
            for at, kind, src, dst in self.events
        ).encode()
