"""Geo-replication: WAN-joined regions, log shipping, region failover.

The region-scale robustness layer (E17). Multiple
:class:`~repro.sharding.ShardedKvCluster` regions join a
:class:`WanFabric` of directional, partitionable WAN links; each
:class:`Region` ships its write log to every peer with tunable
:class:`Consistency`; a :class:`GeoKvClient` fails over between regions
behind circuit breakers, replays unacknowledged writes, and serves
staleness-bounded follower reads when the brownout ladder asks for them.
"""

from repro.georep.client import GeoKvClient
from repro.georep.log import Consistency, LogEntry, ReplicationLog
from repro.georep.region import GeoCluster, LogShipper, Region, WanSpec
from repro.georep.wan import (
    DEFAULT_WAN_BANDWIDTH,
    DEFAULT_WAN_PROPAGATION,
    WanFabric,
    WanLink,
    wan_component,
)

__all__ = [
    "Consistency",
    "DEFAULT_WAN_BANDWIDTH",
    "DEFAULT_WAN_PROPAGATION",
    "GeoCluster",
    "GeoKvClient",
    "LogEntry",
    "LogShipper",
    "Region",
    "ReplicationLog",
    "WanFabric",
    "WanLink",
    "WanSpec",
    "wan_component",
]
