"""Regions: a sharded cluster behind a gateway, plus log shipping.

A :class:`Region` is one failure domain: its own
:class:`~repro.hw.net.Network`, its own
:class:`~repro.sharding.ShardedKvCluster` (DPU addresses prefixed with
the region name so they stay globally unique on the WAN fabric), and a
**gateway** RPC server — the region's public face. The gateway accepts
``geo.put``/``geo.get``/``geo.delete`` from clients anywhere on the
fabric, appends writes to the region's :class:`~repro.georep.log.
ReplicationLog`, applies them to the local cluster, and — per the
configured :class:`~repro.georep.log.Consistency` — waits for peer acks
before answering.

One :class:`LogShipper` per peer pushes the log tail over the WAN
(``repl.ship``), guarded by a :class:`~repro.overload.CircuitBreaker` so
a partitioned peer costs one cheap refused call per interval instead of
a full RPC deadline. Shippers expose per-peer replication lag as
telemetry gauges (``lag_entries``, ``lag_seconds``) — the live RPO
exposure — and heartbeat when idle so follower staleness stays bounded
in the absence of writes.

:class:`GeoCluster` wires N regions into a full mesh and is the
entry point E17 and the tests use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.georep.log import Consistency, LogEntry, ReplicationLog
from repro.georep.wan import (
    DEFAULT_WAN_BANDWIDTH,
    DEFAULT_WAN_PROPAGATION,
    WanFabric,
)
from repro.hw.net import Network
from repro.overload import CircuitBreaker
from repro.sharding import ShardedKvClient, ShardedKvCluster
from repro.sim import Event, Simulator
from repro.telemetry.tracing import NULL_SPAN
from repro.transport import RpcClient, RpcError, RpcServer, UdpSocket

__all__ = ["GeoCluster", "LogShipper", "Region", "WanSpec"]

#: Shipper cadence: how often an idle shipper polls for new log entries.
SHIP_INTERVAL = 1e-3
#: Entries coalesced into one ``repl.ship`` request.
SHIP_BATCH = 32
#: Idle shippers send an empty ship at least this often, so follower
#: staleness stays bounded even with no write traffic.
SHIP_HEARTBEAT = 5e-3
#: Wire timing for one ship over a default WAN RTT (~10 ms).
SHIP_TIMEOUT = 15e-3
SHIP_RETRIES = 1
SHIP_DEADLINE = 35e-3


class LogShipper:
    """Ships one region's log to one peer, breaker-guarded.

    ``shipped`` is the peer's acknowledged high-water mark (entries
    ``[0, shipped)`` are known applied there). The gap to the log head
    is the replication lag; its oldest entry's age is the lag in
    seconds — both exported as gauges and both exactly the RPO exposure
    toward this peer if the origin region were lost right now.
    """

    def __init__(
        self,
        sim: Simulator,
        region: "Region",
        peer: str,
        peer_address: str,
        *,
        interval: float = SHIP_INTERVAL,
        batch: int = SHIP_BATCH,
        heartbeat: float = SHIP_HEARTBEAT,
        timeout: float = SHIP_TIMEOUT,
        retries: int = SHIP_RETRIES,
        deadline: float = SHIP_DEADLINE,
        breaker_failures: int = 2,
        breaker_reset: float = 25e-3,
    ):
        self.sim = sim
        self.region = region
        self.peer = peer
        self.peer_address = peer_address
        self.interval = interval
        self.batch = batch
        self.heartbeat = heartbeat
        self.timeout = timeout
        self.retries = retries
        self.deadline = deadline
        self.shipped = 0
        self.stopped = False
        self._last_ship = sim.now
        self.rpc = RpcClient(
            sim, UdpSocket(sim, region.network.endpoint(
                f"{region.name}-ship-{peer}"
            ))
        )
        self._metrics = sim.telemetry.unique_scope(
            f"georep.{region.name}.ship.{peer}"
        )
        self.breaker = CircuitBreaker(
            sim, self._metrics.scope("breaker"),
            failure_threshold=breaker_failures, reset_timeout=breaker_reset,
        )
        self._batches = self._metrics.counter("batches")
        self._entries = self._metrics.counter("entries")
        self._heartbeats = self._metrics.counter("heartbeats")
        self._failures = self._metrics.counter("failures")
        self._lag_entries = self._metrics.gauge("lag_entries")
        self._lag_seconds = self._metrics.gauge("lag_seconds")
        sim.process(self._run())

    # -- lag (the live RPO exposure toward this peer) -------------------------
    @property
    def lag_entries(self) -> int:
        return self.region.log.head - self.shipped

    @property
    def lag_seconds(self) -> float:
        if self.lag_entries <= 0:
            return 0.0
        return self.sim.now - self.region.log.entry(self.shipped).stamp

    def _update_lag(self) -> None:
        self._lag_entries.set(self.lag_entries)
        self._lag_seconds.set(self.lag_seconds)

    def stop(self) -> None:
        """Stop the shipping loop (lets a finished simulation drain)."""
        self.stopped = True

    # -- the shipping loop ----------------------------------------------------
    def _run(self):
        while not self.stopped:
            caught_up = self.region.log.head <= self.shipped
            if caught_up and self.sim.now - self._last_ship < self.heartbeat:
                wake = Event(self.sim)
                self.region._ship_wakes.append(wake)
                yield self.sim.any_of([wake, self.sim.timeout(self.interval)])
                self._update_lag()
                continue
            if not self.breaker.allow():
                self._update_lag()
                yield self.sim.timeout(self.interval)
                continue
            entries = self.region.log.since(self.shipped, self.batch)
            # Freshness the peer may claim after applying this batch: if
            # the batch drains the log we vouch for "now", otherwise only
            # through the last shipped entry's stamp.
            if self.shipped + len(entries) >= self.region.log.head:
                through = self.sim.now
            else:
                through = entries[-1].stamp
            size = 48 + sum(entry.wire_size for entry in entries)
            # The shipper loop is nobody's flow, but the entries it
            # carries are: run the ship on the first traced entry's
            # context so the WAN hop and the peer's apply join the
            # originating write's trace.
            tracer = self.sim.tracer
            context = None
            if tracer.enabled:
                for entry in entries:
                    if entry.trace is not None:
                        context = entry.trace
                        break
            try:
                ship = self._ship_once(entries, through, size)
                if context is not None:
                    acked = yield from tracer.drive(ship, context)
                else:
                    acked = yield from ship
            except RpcError:
                self.breaker.record_failure()
                self._failures.inc()
                self._update_lag()
                yield self.sim.timeout(self.interval)
                continue
            self.breaker.record_success()
            self._last_ship = self.sim.now
            if entries:
                self._batches.inc()
                self._entries.inc(len(entries))
            else:
                self._heartbeats.inc()
            self.shipped = max(self.shipped, int(acked))
            self.region._on_peer_ack(self.peer, self.shipped)
            self._update_lag()

    def _ship_once(self, entries, through: float, size: int):
        """Process: one ``repl.ship`` round trip to the peer gateway."""
        tracer = self.sim.tracer
        span = tracer.span(
            "repl.ship", "georep",
            region=self.region.name, peer=self.peer, entries=len(entries),
        ) if tracer.enabled else NULL_SPAN
        with span:
            acked = yield from self.rpc.call(
                self.peer_address, "repl.ship",
                self.region.name, tuple(entries), through,
                request_size=size, response_size=24,
                timeout=self.timeout, retries=self.retries,
                deadline=self.deadline,
            )
        return acked


class Region:
    """One geographic failure domain on a :class:`WanFabric`.

    Args:
        sim: the simulator.
        fabric: the WAN fabric this region joins (the region creates and
            registers its own internal :class:`~repro.hw.net.Network`).
        name: region name; prefixes every internal address
            (``{name}-dpu-N``, gateway ``{name}-gw``).
        dpu_count: DPUs in the region's sharded cluster.
        consistency: peer-ack mode writes wait for (see
            :class:`~repro.georep.log.Consistency`).
        ssd_blocks / queue_capacity / workers: forwarded to the
            region's :class:`~repro.sharding.ShardedKvCluster`.
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: WanFabric,
        name: str,
        *,
        dpu_count: int = 2,
        consistency: Consistency = Consistency.ASYNC,
        ssd_blocks: int = 4096,
        queue_capacity: Optional[int] = None,
        workers: int = 2,
    ):
        self.sim = sim
        self.fabric = fabric
        self.name = name
        self.consistency = consistency
        self.network = fabric.add_region(name, Network(sim))
        self.cluster = ShardedKvCluster(
            sim, self.network, dpu_count=dpu_count, ssd_blocks=ssd_blocks,
            queue_capacity=queue_capacity, workers=workers, name=name,
        )
        self.store = ShardedKvClient(sim, self.cluster, name=f"{name}-gw")
        self.address = f"{name}-gw"
        self.server = RpcServer(
            sim, UdpSocket(sim, self.network.endpoint(self.address))
        )
        self.log: ReplicationLog
        self.peers: Dict[str, str] = {}
        self.shippers: Dict[str, LogShipper] = {}
        #: key -> (stamp, origin): the LWW version of the applied value.
        self.version: Dict[bytes, Tuple[float, str]] = {}
        #: peer -> freshness timestamp: we hold every write that peer
        #: originated up to this simulated time.
        self.fresh_through: Dict[str, float] = {}
        #: peer -> next sequence number we expect from it (dedup cursor).
        self.applied_from: Dict[str, int] = {}
        #: peer -> entries of *ours* it has acknowledged (high-water mark).
        self.peer_acked: Dict[str, int] = {}
        self._ack_waiters: Dict[int, List[Tuple[int, Event]]] = {}
        self._ship_wakes: List[Event] = []
        self._stamp_floor = -math.inf
        self._metrics = sim.telemetry.unique_scope(f"georep.{name}")
        self.log = ReplicationLog(self._metrics.scope("log"))
        self._puts = self._metrics.counter("puts")
        self._gets = self._metrics.counter("gets")
        self._deletes = self._metrics.counter("deletes")
        self._ships_received = self._metrics.counter("ships_received")
        self._entries_applied = self._metrics.counter("entries_applied")
        self._entries_stale = self._metrics.counter("entries_stale")
        self._staleness_gauge = self._metrics.gauge("staleness")
        self.server.register("geo.put", self._geo_put)
        self.server.register("geo.get", self._geo_get)
        self.server.register("geo.delete", self._geo_delete)
        self.server.register("geo.ping", lambda: True)
        self.server.register("repl.ship", self._repl_ship)

    # -- peering --------------------------------------------------------------
    def add_peer(self, name: str, address: str, **shipper_kwargs) -> LogShipper:
        """Start replicating to the peer region at *address*."""
        if name == self.name or name in self.peers:
            raise ConfigurationError(f"bad peer {name!r} for {self.name!r}")
        self.peers[name] = address
        self.fresh_through[name] = self.sim.now
        self.applied_from[name] = 0
        self.peer_acked[name] = 0
        shipper = LogShipper(self.sim, self, name, address, **shipper_kwargs)
        self.shippers[name] = shipper
        self.fabric.refresh()
        return shipper

    def _acks_needed(self) -> int:
        if self.consistency is Consistency.SYNC:
            return len(self.peers)
        if self.consistency is Consistency.QUORUM:
            # Majority of all regions, counting the local apply as one.
            return (len(self.peers) + 1) // 2 + 1 - 1
        return 0

    def _on_peer_ack(self, peer: str, through: int) -> None:
        self.peer_acked[peer] = max(self.peer_acked[peer], through)
        # Entries every peer has acknowledged can never be shipped again
        # (every shipper cursor and dedup cursor is past them): reclaim
        # them so a long-lived region's log stays bounded.
        self.log.truncate_through(min(self.peer_acked.values()))
        for seq in sorted(self._ack_waiters):
            waiters = self._ack_waiters[seq]
            acked = sum(1 for mark in self.peer_acked.values() if mark > seq)
            remaining = []
            for needed, gate in waiters:
                if acked >= needed:
                    if not gate.triggered:
                        gate.succeed(None)
                else:
                    remaining.append((needed, gate))
            if remaining:
                self._ack_waiters[seq] = remaining
            else:
                del self._ack_waiters[seq]

    def _wake_shippers(self) -> None:
        wakes, self._ship_wakes = self._ship_wakes, []
        for gate in wakes:
            if not gate.triggered:
                gate.succeed(None)

    def _await_acks(self, seq: int):
        needed = self._acks_needed()
        if needed <= 0:
            return
        acked = sum(1 for mark in self.peer_acked.values() if mark > seq)
        if acked >= needed:
            return
        gate = Event(self.sim)
        self._ack_waiters.setdefault(seq, []).append((needed, gate))
        yield gate

    def _next_stamp(self) -> float:
        """A strictly increasing per-region write stamp.

        Two writes accepted at the same simulated instant would tie on
        ``(stamp, origin)`` and peers applying LWW would keep the first
        while this region's store keeps the last — silent divergence.
        Nudging the second stamp up one ulp keeps stamps unique per
        origin while staying within rounding error of simulated time.
        """
        stamp = self.sim.now
        if stamp <= self._stamp_floor:
            stamp = math.nextafter(self._stamp_floor, math.inf)
        self._stamp_floor = stamp
        return stamp

    # -- freshness ------------------------------------------------------------
    def staleness_of(self, origin: Optional[str]) -> float:
        """Age of this region's view of *origin*'s writes (0 for itself)."""
        if origin is None or origin == self.name:
            return 0.0
        if origin not in self.fresh_through:
            raise ConfigurationError(f"unknown origin region {origin!r}")
        return self.sim.now - self.fresh_through[origin]

    # -- the gateway surface --------------------------------------------------
    def _geo_put(self, key: bytes, value: bytes):
        key, value = bytes(key), bytes(value)
        tracer = self.sim.tracer
        if tracer.enabled:
            context = tracer.active_context
            span = tracer.span("geo.put", "georep", region=self.name)
        else:
            context = None
            span = NULL_SPAN
        with span:
            stamp = self._next_stamp()
            entry = self.log.append("put", key, value, stamp, self.name,
                                    trace=context)
            self.version[key] = (stamp, self.name)
            self._wake_shippers()
            yield from self.store.put(key, value)
            yield from self._await_acks(entry.seq)
            self._puts.inc()
        return stamp

    def _geo_delete(self, key: bytes):
        key = bytes(key)
        tracer = self.sim.tracer
        if tracer.enabled:
            context = tracer.active_context
            span = tracer.span("geo.delete", "georep", region=self.name)
        else:
            context = None
            span = NULL_SPAN
        with span:
            stamp = self._next_stamp()
            entry = self.log.append("delete", key, None, stamp, self.name,
                                    trace=context)
            self.version[key] = (stamp, self.name)
            self._wake_shippers()
            yield from self.store.delete(key)
            yield from self._await_acks(entry.seq)
            self._deletes.inc()
        return stamp

    def _geo_get(self, key: bytes, origin: Optional[str] = None):
        """Serve a read plus this region's staleness w.r.t. *origin*.

        A follower read: the caller names the region whose writes it
        cares about (normally the current primary) and gets back how far
        behind this region might be on them — the number a
        staleness-bounded client checks before trusting the value.
        """
        tracer = self.sim.tracer
        span = tracer.span(
            "geo.get", "georep", region=self.name,
        ) if tracer.enabled else NULL_SPAN
        with span:
            value = yield from self.store.get(bytes(key))
            staleness = self.staleness_of(origin)
            self._staleness_gauge.set(staleness)
            self._gets.inc()
        return value, staleness

    def _repl_ship(self, origin: str, entries: Tuple[LogEntry, ...],
                   through: float):
        """Apply one shipped batch; returns the new per-origin cursor.

        Application is LWW on ``(stamp, origin)``, so re-shipped tails
        after a heal are safe: an entry older than the applied version
        (e.g. overwritten by a post-failover write at this region) is
        counted stale and skipped, never resurrecting old data.
        """
        if origin not in self.applied_from:
            raise ConfigurationError(f"unknown peer {origin!r}")
        tracer = self.sim.tracer
        span = tracer.span(
            "repl.apply", "georep",
            region=self.name, origin=origin, entries=len(entries),
        ) if tracer.enabled else NULL_SPAN
        cursor = self.applied_from[origin]
        with span:
            for entry in entries:
                if entry.seq < cursor:
                    continue  # duplicate delivery after a retransmit
                current = self.version.get(entry.key)
                if current is None or (entry.stamp, entry.origin) > current:
                    self.version[entry.key] = (entry.stamp, entry.origin)
                    if entry.op == "put":
                        yield from self.store.put(entry.key, entry.value)
                    else:
                        yield from self.store.delete(entry.key)
                    self._entries_applied.inc()
                else:
                    self._entries_stale.inc()
                cursor = entry.seq + 1
            self.applied_from[origin] = cursor
            self.fresh_through[origin] = max(self.fresh_through[origin],
                                             through)
            self._ships_received.inc()
        return cursor


@dataclass(frozen=True)
class WanSpec:
    """One directional WAN path used by :class:`GeoCluster` wiring."""

    src: str
    dst: str
    propagation: float = DEFAULT_WAN_PROPAGATION
    bandwidth: float = DEFAULT_WAN_BANDWIDTH


class GeoCluster:
    """N regions, full-mesh WAN links, all-pairs log shipping.

    Args:
        sim: the simulator.
        names: region names, preference order preserved.
        wan: directional link specs; any pair not covered gets default
            symmetric links, so tests can spell out only the paths whose
            asymmetry matters.
        consistency: ack mode for every region's writes.
        injector: optional fault injector the WAN links consult (for
            :meth:`~repro.faults.FaultPlan.wan_partition` windows).
        dpu_count / region_kwargs: forwarded to each :class:`Region`.
        shipper_kwargs: forwarded to every :class:`LogShipper`.
    """

    def __init__(
        self,
        sim: Simulator,
        names: Sequence[str],
        *,
        wan: Sequence[WanSpec] = (),
        consistency: Consistency = Consistency.ASYNC,
        injector=None,
        dpu_count: int = 2,
        shipper_kwargs: Optional[dict] = None,
        **region_kwargs,
    ):
        if len(names) < 2:
            raise ConfigurationError("a geo cluster needs >= 2 regions")
        self.sim = sim
        self.fabric = WanFabric(sim, injector=injector)
        self.regions: Dict[str, Region] = {}
        for name in names:
            self.regions[name] = Region(
                sim, self.fabric, name, dpu_count=dpu_count,
                consistency=consistency, **region_kwargs,
            )
        specified = {(spec.src, spec.dst) for spec in wan}
        for spec in wan:
            self.fabric.connect(spec.src, spec.dst,
                                bandwidth=spec.bandwidth,
                                propagation=spec.propagation)
        for src in names:
            for dst in names:
                if src != dst and (src, dst) not in specified:
                    self.fabric.connect(src, dst)
        shipper_kwargs = shipper_kwargs or {}
        for src in names:
            for dst in names:
                if src != dst:
                    self.regions[src].add_peer(
                        dst, self.regions[dst].address, **shipper_kwargs,
                    )
        self.fabric.refresh()

    def region(self, name: str) -> Region:
        try:
            return self.regions[name]
        except KeyError:
            raise ConfigurationError(f"unknown region {name!r}") from None

    def stop(self) -> None:
        """Stop every shipper so the event heap can drain.

        The shippers' periodic polls otherwise keep the simulation alive
        forever; call this once the scenario is over, then let the
        simulator run the stragglers out (at most one interval each).
        """
        for region in self.regions.values():
            for shipper in region.shippers.values():
                shipper.stop()
