"""A region-aware KV client: failover, write replay, bounded-stale reads.

The geo analogue of :class:`~repro.dpu.cluster.FailoverKvClient`, one
level up: instead of replicas inside a rack it walks *regions*, each
guarded by its own :class:`~repro.overload.CircuitBreaker`. The client
is **sticky** — after failing over it keeps sending to the surviving
region rather than re-paying a dead primary's deadline per op — and
**replays** unacknowledged writes: a put whose ack was lost to a
partition is re-issued to the next region in preference order (safe,
because writes are LWW-versioned at the gateways; the replay's fresh
stamp wins over the stranded original if both eventually replicate).

Reads can be served from the client's *home* region as
staleness-bounded follower reads: the gateway reports how far behind it
is on the current primary's writes, and the client only accepts the
local value when that age is within ``stale_bound``. Wiring in a
:class:`~repro.overload.BrownoutController` makes this automatic — when
the ladder reaches its ``serve_stale`` rung, reads shed their WAN round
trip exactly when the system needs the capacity back.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError, DegradedError
from repro.georep.region import GeoCluster
from repro.overload import BrownoutController, CircuitBreaker
from repro.transport import RetryBudget, RpcClient, RpcError, UdpSocket

__all__ = ["GeoKvClient"]

#: Per-attempt wire timing sized for default WAN RTTs (~10 ms).
CALL_TIMEOUT = 12e-3
CALL_RETRIES = 1
CALL_DEADLINE = 30e-3
#: Pause between full preference-order walks that all failed.
ROUND_PAUSE = 10e-3


class GeoKvClient:
    """One tenant's geo-replicated KV handle.

    Args:
        sim: the simulator.
        cluster: the :class:`~repro.georep.region.GeoCluster` to use.
        name: unique suffix for this client's endpoint and metrics.
        home: region whose network hosts this client's endpoint (and
            serves its bounded-staleness follower reads).
        preference: region failover order, primary first; defaults to
            the cluster's region order. Must include *home*.
        stale_bound: max follower staleness (seconds) accepted when
            stale reads are active.
        brownout: optional ladder; while its mode has ``serve_stale``
            set, reads try the home follower first.
        retry_budget: optional shared cap on retransmissions, exported
            under this client's metric path.
        history: optional :class:`~repro.verify.HistoryRecorder`; when
            set, every op's invoke/outcome is recorded on the sim clock
            for consistency checking. Failed writes record as
            *indeterminate* (the ack was lost, the write may have
            landed); follower reads record their served staleness.
    """

    def __init__(
        self,
        sim,
        cluster: GeoCluster,
        name: str,
        home: str,
        *,
        preference: Optional[Sequence[str]] = None,
        timeout: float = CALL_TIMEOUT,
        retries: int = CALL_RETRIES,
        deadline: float = CALL_DEADLINE,
        rounds: int = 3,
        round_pause: float = ROUND_PAUSE,
        stale_bound: float = 50e-3,
        brownout: Optional[BrownoutController] = None,
        retry_budget: Optional[RetryBudget] = None,
        breaker_failures: int = 2,
        breaker_reset: float = 25e-3,
        history=None,
    ):
        self.sim = sim
        self.cluster = cluster
        self.name = name
        self.home = home
        self.history = history
        self.preference: List[str] = list(
            preference if preference is not None else cluster.regions
        )
        if home not in self.preference:
            raise ConfigurationError(f"home {home!r} not in preference list")
        for region in self.preference:
            cluster.region(region)  # validate names
        self.timeout = timeout
        self.retries = retries
        self.deadline = deadline
        self.rounds = rounds
        self.round_pause = round_pause
        self.stale_bound = stale_bound
        self.brownout = brownout
        #: Region ops are currently routed to (sticky across failovers).
        self.current = self.preference[0]
        self.rpc = RpcClient(
            sim,
            UdpSocket(sim, cluster.fabric.endpoint(home, f"geo-{name}")),
            retry_budget=retry_budget,
        )
        self._metrics = sim.telemetry.unique_scope(f"geo.client.{name}")
        self.breakers: Dict[str, CircuitBreaker] = {
            region: CircuitBreaker(
                sim, self._metrics.scope(f"breaker.{region}"),
                failure_threshold=breaker_failures,
                reset_timeout=breaker_reset,
            )
            for region in self.preference
        }
        self._ops = self._metrics.counter("ops")
        self._reads = self._metrics.counter("reads")
        self._writes = self._metrics.counter("writes")
        self._failed = self._metrics.counter("failed_ops")
        self._failovers = self._metrics.counter("failovers")
        self._replayed = self._metrics.counter("replayed_writes")
        self._stale_served = self._metrics.counter("stale_reads_served")
        self._stale_fallbacks = self._metrics.counter("stale_read_fallbacks")
        self._region_gauge = self._metrics.gauge("current_region")
        self.max_staleness_served = 0.0

    # -- read-through counters ------------------------------------------------
    @property
    def failovers(self) -> int:
        """Ops answered by a region other than the one tried first."""
        return self._failovers.value

    @property
    def replayed_writes(self) -> int:
        """Writes re-issued after at least one unacknowledged attempt."""
        return self._replayed.value

    @property
    def stale_reads_served(self) -> int:
        """Reads served by the home follower within the staleness bound."""
        return self._stale_served.value

    # -- routing --------------------------------------------------------------
    def _ordered(self) -> List[str]:
        return [self.current] + [
            region for region in self.preference if region != self.current
        ]

    def _settle(self, region: str, first: str, attempts: int,
                write: bool) -> None:
        if region != first:
            self._failovers.inc()
        if write and attempts > 1:
            self._replayed.inc()
        if region != self.current:
            self.current = region
            self._region_gauge.set(self.preference.index(region))

    def _walk(self, method: str, args: tuple, request_size: int,
              response_size: int, *, write: bool):
        """Process: try regions in order until one answers, with replay.

        A full walk that fails everywhere pauses and retries (up to
        ``rounds`` walks) — during a short total outage writes park here
        instead of failing, which is what lets the disaster drill
        promise zero lost *acknowledged* writes: an op is either acked
        by a region that logged it, or still the client's to retry.
        """
        first = self._ordered()[0]
        attempts = 0
        for round_index in range(self.rounds):
            for region in self._ordered():
                breaker = self.breakers[region]
                if not breaker.allow():
                    continue
                attempts += 1
                gateway = self.cluster.region(region).address
                call_args = args + (region,) if method == "geo.get" else args
                try:
                    result = yield from self.rpc.call(
                        gateway, method, *call_args,
                        request_size=request_size,
                        response_size=response_size,
                        timeout=self.timeout, retries=self.retries,
                        deadline=self.deadline,
                    )
                except RpcError:
                    breaker.record_failure()
                    continue
                breaker.record_success()
                self._settle(region, first, attempts, write)
                return region, result
            if round_index + 1 < self.rounds:
                yield self.sim.timeout(self.round_pause)
        self._failed.inc()
        raise DegradedError(
            f"geo {method} failed in every region after {attempts} attempts"
        )

    # -- the KV surface -------------------------------------------------------
    def put(self, key: bytes, value: bytes):
        """Process: write via the current region; returns (stamp, region)."""
        key, value = bytes(key), bytes(value)
        pending = (self.history.invoke(self.name, "w", key, value)
                   if self.history is not None else None)
        try:
            region, stamp = yield from self._walk(
                "geo.put", (key, value), 48 + len(key) + len(value), 24,
                write=True,
            )
        except DegradedError:
            if pending is not None:
                pending.indeterminate()
            raise
        self._writes.inc()
        self._ops.inc()
        if pending is not None:
            pending.ok(stamp=stamp)
        return stamp, region

    def delete(self, key: bytes):
        """Process: delete via the current region; returns (stamp, region)."""
        key = bytes(key)
        pending = (self.history.invoke(self.name, "d", key)
                   if self.history is not None else None)
        try:
            region, stamp = yield from self._walk(
                "geo.delete", (key,), 48 + len(key), 24, write=True,
            )
        except DegradedError:
            if pending is not None:
                pending.indeterminate()
            raise
        self._writes.inc()
        self._ops.inc()
        if pending is not None:
            pending.ok(stamp=stamp)
        return stamp, region

    def get(self, key: bytes, *, max_staleness: Optional[float] = None):
        """Process: read *key*; possibly from the home follower.

        A bounded-staleness local read is attempted when the caller
        passes ``max_staleness`` or the attached brownout ladder is in a
        ``serve_stale`` mode. The follower's reported staleness is
        checked against the bound; too stale falls back to the primary
        walk, so the bound is a guarantee, not a hint.
        """
        key = bytes(key)
        pending = (self.history.invoke(self.name, "r", key)
                   if self.history is not None else None)
        bound = max_staleness
        if bound is None and self.brownout is not None \
                and self.brownout.serve_stale:
            bound = self.stale_bound
        if bound is not None and self.home != self.current:
            served = yield from self._stale_get(key, bound)
            if served is not _PRIMARY:
                value, staleness = served
                if pending is not None:
                    pending.ok(value, staleness=staleness)
                return value
        try:
            __, (value, __) = yield from self._walk(
                "geo.get", (key,), 48 + len(key), 136, write=False,
            )
        except DegradedError:
            if pending is not None:
                pending.fail()
            raise
        self._reads.inc()
        self._ops.inc()
        if pending is not None:
            pending.ok(value)
        return value

    def _stale_get(self, key: bytes, bound: float):
        """Process: home-follower read. Returns ``(value, staleness)``,
        or ``_PRIMARY`` when the primary walk must run instead."""
        breaker = self.breakers[self.home]
        if not breaker.allow():
            return _PRIMARY
        gateway = self.cluster.region(self.home).address
        try:
            value, staleness = yield from self.rpc.call(
                gateway, "geo.get", key, self.current,
                request_size=48 + len(key), response_size=136,
                timeout=self.timeout, retries=self.retries,
                deadline=self.deadline,
            )
        except RpcError:
            breaker.record_failure()
            return _PRIMARY
        breaker.record_success()
        if staleness > bound:
            self._stale_fallbacks.inc()
            return _PRIMARY
        self._stale_served.inc()
        if staleness > self.max_staleness_served:
            self.max_staleness_served = staleness
        self._reads.inc()
        self._ops.inc()
        return value, staleness


#: Sentinel: the follower read declined and the primary walk must run.
_PRIMARY = object()
