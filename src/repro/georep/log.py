"""The replication log: every region's durable record of its own writes.

Geo-replication here is *log shipping*: each region appends its locally
accepted writes to an ordered :class:`ReplicationLog` and ships the tail
to every peer. An entry carries its simulated-time append ``stamp`` and
``origin`` region, and the pair ``(stamp, origin)`` is the total order
used for last-writer-wins conflict resolution — deterministic, and safe
to replay in any order (a stale entry re-shipped after a heal loses to
any newer write it races with).

:class:`Consistency` picks how many peer acknowledgements a write waits
for before the client sees success — the knob E17's mode sweep turns:

* ``ASYNC`` — ack immediately; replication lag is the RPO exposure.
* ``QUORUM`` — ack once a majority of regions (self included) have it.
* ``SYNC`` — ack only when every peer has it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.telemetry import MetricScope

__all__ = ["Consistency", "LogEntry", "ReplicationLog"]


class Consistency(enum.Enum):
    """How many peer acks a write waits for before it is acknowledged."""

    ASYNC = "async"
    QUORUM = "quorum"
    SYNC = "sync"


@dataclass(frozen=True)
class LogEntry:
    """One replicated write; ``(stamp, origin)`` is its LWW version."""

    seq: int
    op: str  # "put" | "delete"
    key: bytes
    value: Optional[bytes]
    stamp: float
    origin: str
    #: The sampled :class:`~repro.telemetry.TraceContext` of the write
    #: that appended this entry (``None`` when unsampled). Excluded from
    #: equality, :meth:`line`, and ``wire_size`` — causality metadata,
    #: not replicated state.
    trace: Any = field(default=None, compare=False, repr=False)

    @property
    def wire_size(self) -> int:
        """Bytes this entry occupies inside a shipped batch."""
        return 32 + len(self.key) + (len(self.value) if self.value else 0)

    def line(self) -> str:
        """Canonical one-line rendering (stable across runs)."""
        value = self.value.hex() if self.value is not None else "-"
        return (f"{self.seq} {self.op} {self.key.hex()} {value} "
                f"stamp={self.stamp!r} origin={self.origin}")


class ReplicationLog:
    """An append-only, in-order record of one region's own writes.

    Shippers read it by offset (:meth:`since`), so the log doubles as
    the replication cursor store: a peer's acknowledged high-water mark
    is simply an index into this list, and the acked-but-unshipped
    suffix *is* the RPO exposure toward that peer.
    """

    def __init__(self, metrics: MetricScope):
        self.entries: List[LogEntry] = []
        #: Sequence number of ``entries[0]``: everything below it has
        #: been truncated after every peer acknowledged past it.
        self.base = 0
        self._appended = metrics.counter("appended")
        self._truncated = metrics.counter("truncated")
        self._head_gauge = metrics.gauge("head")
        self._retained_gauge = metrics.gauge("retained")

    @property
    def head(self) -> int:
        """Sequence number the next append will get."""
        return self.base + len(self.entries)

    def append(self, op: str, key: bytes, value: Optional[bytes],
               stamp: float, origin: str, trace: Any = None) -> LogEntry:
        entry = LogEntry(self.head, op, key, value, stamp, origin, trace)
        self.entries.append(entry)
        self._appended.inc()
        self._head_gauge.set(self.head)
        self._retained_gauge.set(len(self.entries))
        return entry

    def entry(self, seq: int) -> LogEntry:
        """The retained entry with sequence number *seq*."""
        if seq < self.base:
            raise KeyError(f"log entry {seq} truncated (base={self.base})")
        return self.entries[seq - self.base]

    def since(self, seq: int, limit: int) -> List[LogEntry]:
        """Up to *limit* entries starting at sequence number *seq*."""
        if seq < self.base:
            raise KeyError(
                f"replication cursor {seq} below truncation base {self.base}"
            )
        at = seq - self.base
        return self.entries[at:at + limit]

    def truncate_through(self, seq: int) -> int:
        """Drop every entry with sequence number below *seq*.

        The caller (the region, on peer acks) guarantees every shipper's
        cursor and every peer's acknowledged high-water mark has passed
        *seq*; truncating further than ``head`` is clamped. Returns the
        number of entries dropped and counts them on ``truncated``.
        """
        drop = min(seq, self.head) - self.base
        if drop <= 0:
            return 0
        del self.entries[:drop]
        self.base += drop
        self._truncated.inc(drop)
        self._retained_gauge.set(len(self.entries))
        return drop
