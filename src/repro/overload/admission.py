"""Token-bucket + AIMD admission control with priority-class shedding.

Admission control is the *front door* of overload protection: excess
load is refused before it costs any service time. The controller is a
token bucket refilled deterministically from the simulated clock, whose
refill rate adapts by AIMD — additive increase while the system is
healthy, multiplicative decrease on an overload signal (a queue-full
drop, a breaker trip, an SLO firing) — so the admitted rate converges
on the actual service capacity without ever being configured to it.

Priority classes implement *graceful* shedding: each class has a shed
threshold expressed as a bucket-fill fraction, so as the bucket drains
under load, scrub traffic is refused first, then background work, and
user gets/puts only when the bucket is empty outright.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.telemetry import MetricScope

__all__ = ["Priority", "TokenBucket", "AdmissionController"]


class Priority(enum.IntEnum):
    """Load-shedding classes, most-protected first."""

    USER = 0        # foreground gets/puts: shed last
    BACKGROUND = 1  # compaction, tiering moves, repair traffic
    SCRUB = 2       # integrity scans: shed first


#: Minimum bucket fill fraction each class needs to be admitted. USER
#: needs only enough tokens for its own cost; lower classes need the
#: bucket visibly healthy.
SHED_THRESHOLDS: Dict[Priority, float] = {
    Priority.USER: 0.0,
    Priority.BACKGROUND: 0.25,
    Priority.SCRUB: 0.50,
}


class TokenBucket:
    """A deterministic token bucket on any ``now``-bearing clock.

    Refill is lazy: tokens accrue as ``rate * elapsed`` at each consult,
    capped at ``capacity`` — no background process, so two same-seed
    runs consult at identical times and see identical levels.
    """

    def __init__(self, clock, rate: float, capacity: float):
        if rate <= 0 or capacity <= 0:
            raise ConfigurationError("token bucket needs positive rate/capacity")
        self.clock = clock
        self.rate = rate
        self.capacity = capacity
        self._tokens = capacity
        self._last = clock.now

    def _refill(self) -> None:
        now = self.clock.now
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            self._last = now

    @property
    def tokens(self) -> float:
        """Tokens available right now, after lazy refill at the current rate."""
        self._refill()
        return self._tokens

    @property
    def level(self) -> float:
        """Fill fraction in [0, 1]."""
        return self.tokens / self.capacity

    def try_take(self, cost: float = 1.0) -> bool:
        """Take *cost* tokens if available; ``False`` means the caller sheds."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    def set_rate(self, rate: float) -> None:
        """Retarget the refill rate (tokens/s), settling accrued tokens first."""
        # Settle accrued tokens at the old rate before switching.
        self._refill()
        self.rate = rate


class AdmissionController:
    """Per-priority admission over an AIMD-adapted token bucket.

    Usage: the protected entry point calls :meth:`admit` per request
    and :meth:`record_overload` whenever downstream pressure is seen
    (queue-full drop, breaker trip, SLO firing); something periodic —
    a sampler hook, a control-loop process — calls :meth:`tick` to
    apply the AIMD step for the elapsed window.
    """

    def __init__(
        self,
        clock,
        metrics: MetricScope,
        rate: float,
        burst: Optional[float] = None,
        min_rate: Optional[float] = None,
        max_rate: Optional[float] = None,
        additive_increase: float = 0.05,
        multiplicative_decrease: float = 0.5,
        shed_thresholds: Optional[Dict[Priority, float]] = None,
    ):
        if not 0 < multiplicative_decrease < 1:
            raise ConfigurationError(
                "multiplicative decrease must be in (0, 1)"
            )
        if additive_increase <= 0:
            raise ConfigurationError("additive increase must be positive")
        self.bucket = TokenBucket(
            clock, rate, burst if burst is not None else max(rate * 0.01, 1.0)
        )
        self.initial_rate = rate
        self.min_rate = min_rate if min_rate is not None else rate * 0.05
        self.max_rate = max_rate if max_rate is not None else rate * 4.0
        #: Additive step per tick, as a fraction of the *initial* rate
        #: (so the climb-back speed does not depend on the current rate).
        self.additive_increase = additive_increase
        self.multiplicative_decrease = multiplicative_decrease
        self.shed_thresholds = dict(
            SHED_THRESHOLDS if shed_thresholds is None else shed_thresholds
        )
        self._overloaded_this_window = False
        self._rate_gauge = metrics.gauge("rate")
        self._tokens_gauge = metrics.gauge("tokens")
        self._rate_gauge.set(rate)
        self._admitted = {
            p: metrics.counter(f"admitted.{p.name.lower()}") for p in Priority
        }
        self._shed = {
            p: metrics.counter(f"shed.{p.name.lower()}") for p in Priority
        }
        self._decreases = metrics.counter("aimd_decreases")

    @property
    def rate(self) -> float:
        """The current AIMD-controlled admission rate, in requests/s."""
        return self.bucket.rate

    def admitted(self, priority: Priority = Priority.USER) -> int:
        """Requests admitted so far at *priority*."""
        return self._admitted[priority].value

    def shed(self, priority: Priority = Priority.USER) -> int:
        """Requests shed so far at *priority*."""
        return self._shed[priority].value

    # -- the decision ----------------------------------------------------
    def admit(self, priority: Priority = Priority.USER,
              cost: float = 1.0) -> bool:
        """Admit or shed one request of the given class."""
        threshold = self.shed_thresholds.get(priority, 0.0)
        if self.bucket.level < threshold or not self.bucket.try_take(cost):
            self._shed[priority].inc()
            self._tokens_gauge.set(self.bucket._tokens)
            return False
        self._admitted[priority].inc()
        self._tokens_gauge.set(self.bucket._tokens)
        return True

    # -- AIMD ------------------------------------------------------------
    def record_overload(self) -> None:
        """Flag downstream pressure; applied at the next :meth:`tick`."""
        self._overloaded_this_window = True

    def tick(self, overloaded: Optional[bool] = None) -> float:
        """One AIMD step for the window just ended; returns the new rate.

        ``overloaded`` overrides (ORs with) the recorded flag, so a
        control loop can feed an externally observed signal (queue
        saturation, an SLO firing) directly.
        """
        pressed = self._overloaded_this_window or bool(overloaded)
        self._overloaded_this_window = False
        if pressed:
            new_rate = max(
                self.min_rate, self.rate * self.multiplicative_decrease
            )
            self._decreases.inc()
        else:
            new_rate = min(
                self.max_rate,
                self.rate + self.additive_increase * self.initial_rate,
            )
        self.bucket.set_rate(new_rate)
        self._rate_gauge.set(new_rate)
        return new_rate
