"""End-to-end overload protection (ROADMAP north star, Hyperion §2).

A self-hosting DPU has no fat host CPU to absorb bursts: once offered
load passes the wimpy datapath's capacity, unbounded queues plus
retransmitting clients produce the classic metastable congestion
collapse (goodput *falls* as load rises, because service time is wasted
on requests whose clients already gave up). This package is the
machinery that prevents it, layered bottom-up:

* :class:`BoundedQueue` — bounded, policy-driven queues (FIFO/LIFO plus
  a CoDel-style sojourn-deadline drop) that emit backpressure signals
  as telemetry gauges instead of buffering without limit;
* :class:`AdmissionController` — a token bucket whose rate adapts by
  AIMD, with per-priority shed thresholds so background and scrub
  traffic is dropped before user gets/puts;
* :class:`CircuitBreaker` — a deterministic CLOSED -> OPEN -> HALF_OPEN
  state machine (driven by the simulated clock) that turns a dead
  backend into an immediate, cheap failure instead of a per-call
  deadline wait;
* :class:`BrownoutController` — subscribes to
  :class:`~repro.telemetry.slo.SloMonitor` rule firings and steps the
  system through declared degradation modes (shrink batches, disable
  compaction, serve stale reads) instead of collapsing.

Everything obeys the repo's determinism contract: state transitions
happen at simulated times, and every log (`breaker.transition_log`,
`brownout.transition_log_bytes()`) is byte-identical for the same seed.
E15 (:mod:`repro.eval.overload`) demonstrates collapse with these
controls off and flat goodput with them on.
"""

from repro.overload.admission import AdmissionController, Priority, TokenBucket
from repro.overload.breaker import BreakerState, CircuitBreaker, CircuitOpenError
from repro.overload.brownout import BrownoutController, BrownoutMode
from repro.overload.queues import BoundedQueue, QueuePolicy

__all__ = [
    "BoundedQueue",
    "QueuePolicy",
    "TokenBucket",
    "AdmissionController",
    "Priority",
    "CircuitBreaker",
    "BreakerState",
    "CircuitOpenError",
    "BrownoutController",
    "BrownoutMode",
]
