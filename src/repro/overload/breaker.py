"""A deterministic CLOSED -> OPEN -> HALF_OPEN circuit breaker.

The failure mode this prevents: a dead backend costs every caller a
full per-call deadline (timeout + retries + backoff), and under load
those stalled calls *are* the congestion — capacity wasted probing a
corpse. The breaker counts consecutive failures; past the threshold it
opens and every subsequent :meth:`allow` is an immediate, free ``False``
until ``reset_timeout`` of simulated time has passed. Then it admits
half-open probes one at a time — a single probe in flight, so a storm
of waiting callers cannot re-trip the breaker off its own traffic —
and enough probe successes close it, any probe failure re-opens it.

All transitions happen at simulated times and are appended to a
transition log, so two same-seed runs produce byte-identical breaker
histories — the same contract as fault schedules and SLO alert logs.
"""

from __future__ import annotations

import enum
from typing import List, Tuple

from repro.common.errors import ConfigurationError, DegradedError
from repro.telemetry import MetricScope

__all__ = ["BreakerState", "CircuitBreaker", "CircuitOpenError"]


class CircuitOpenError(DegradedError):
    """The call was refused because the target's circuit is open."""


class BreakerState(enum.Enum):
    """Breaker positions: CLOSED passes, OPEN refuses, HALF_OPEN probes."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Gauge encoding of the state (for telemetry snapshots).
_STATE_GAUGE = {
    BreakerState.CLOSED: 0,
    BreakerState.OPEN: 1,
    BreakerState.HALF_OPEN: 2,
}


class CircuitBreaker:
    """One breaker guarding one backend (a replica, a memory tier).

    Protocol: call :meth:`allow` before attempting the guarded
    operation (``False`` means fail over immediately), then exactly one
    of :meth:`record_success` / :meth:`record_failure` for attempts
    that were allowed.
    """

    def __init__(
        self,
        clock,
        metrics: MetricScope,
        failure_threshold: int = 5,
        reset_timeout: float = 50e-3,
        success_threshold: int = 1,
    ):
        if failure_threshold < 1 or success_threshold < 1:
            raise ConfigurationError("breaker thresholds must be >= 1")
        if reset_timeout <= 0:
            raise ConfigurationError("reset_timeout must be positive")
        self.clock = clock
        self._recorder = getattr(clock, "recorder", None)
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.success_threshold = success_threshold
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._probe_successes = 0
        #: (time, from-state, to-state) — canonical per-seed history.
        self.transition_log: List[Tuple[float, str, str]] = []
        self._metrics = metrics
        self._state_gauge = metrics.gauge("state")
        self._opened = metrics.counter("opened")
        self._half_opened = metrics.counter("half_opened")
        self._closed = metrics.counter("closed")
        self._rejected = metrics.counter("rejected")

    @property
    def rejected(self) -> int:
        """Calls refused without touching the backend."""
        return self._rejected.value

    def _transition(self, to: BreakerState) -> None:
        self.transition_log.append(
            (self.clock.now, self.state.value, to.value)
        )
        if self._recorder is not None:
            self._recorder.record(
                "breaker",
                f"breaker {self.state.value}->{to.value} at={self.clock.now!r}",
            )
        # Per-edge counters (e.g. ``transitions.closed_to_open``) so a
        # Prometheus scrape sees *which* transitions happened, not just
        # how often each state was entered.
        edge = (f"{self.state.value}_to_{to.value}").replace("-", "_")
        self._metrics.counter(f"transitions.{edge}").inc()
        self.state = to
        self._state_gauge.set(_STATE_GAUGE[to])
        if to is BreakerState.OPEN:
            self._opened.inc()
            self._opened_at = self.clock.now
        elif to is BreakerState.HALF_OPEN:
            self._half_opened.inc()
            self._probe_in_flight = False
            self._probe_successes = 0
        else:
            self._closed.inc()
            self._consecutive_failures = 0

    def transition_log_bytes(self) -> bytes:
        """The transition history as canonical bytes."""
        return "\n".join(
            f"breaker {frm}->{to} at={at!r}"
            for at, frm, to in self.transition_log
        ).encode()

    # -- the guard -------------------------------------------------------
    def allow(self) -> bool:
        """May the caller attempt the guarded operation right now?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self.clock.now - self._opened_at >= self.reset_timeout:
                self._transition(BreakerState.HALF_OPEN)
            else:
                self._rejected.inc()
                return False
        # HALF_OPEN: exactly one probe in flight at a time. A storm of
        # waiting callers must not all rush the recovering backend — the
        # surge itself could re-fail the probe and re-trip the breaker
        # off its own traffic. Everyone but the probe is refused until
        # the probe's outcome comes back.
        if not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        self._rejected.inc()
        return False

    # -- outcomes --------------------------------------------------------
    def record_success(self) -> None:
        """Record a successful call; enough successes close a half-open breaker."""
        if self.state is BreakerState.HALF_OPEN:
            self._probe_in_flight = False
            self._probe_successes += 1
            if self._probe_successes >= self.success_threshold:
                self._transition(BreakerState.CLOSED)
            return
        if self.state is BreakerState.OPEN:
            # An out-of-band verified success (e.g. a health probe that
            # bypassed the breaker): the backend is demonstrably back.
            self._transition(BreakerState.CLOSED)
            return
        self._consecutive_failures = 0

    def record_failure(self) -> None:
        """Record a failed call; enough failures trip the breaker open."""
        if self.state is BreakerState.HALF_OPEN:
            # A failed probe re-opens immediately: the backend is not back.
            self._probe_in_flight = False
            self._transition(BreakerState.OPEN)
            return
        if self.state is BreakerState.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._transition(BreakerState.OPEN)
