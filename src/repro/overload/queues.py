"""Bounded, policy-driven queues with backpressure telemetry.

The implicit queues this replaces (RPC pending handlers, NVMe
submission, tiering promotion backlogs) all shared the same failure
mode: under overload they buffer without limit, so sojourn time grows
past every client deadline and the server ends up doing work nobody is
waiting for. A :class:`BoundedQueue` makes the limit explicit and the
overflow *visible*: a full queue rejects at enqueue (``dropped_full``),
and the CoDel-style policy additionally drops entries at dequeue once
queueing delay has exceeded the target sojourn for a full interval
(``dropped_deadline``) — serving fresh requests instead of stale ones.

Every queue emits its depth and saturation as telemetry gauges, which
is the backpressure signal the admission/brownout layers (and the SLO
monitor) act on.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.sim import Event, Simulator
from repro.telemetry import MetricScope

__all__ = ["QueuePolicy", "BoundedQueue"]


class QueuePolicy(enum.Enum):
    """How a bounded queue orders service and sheds excess delay."""

    #: First-in first-out; overflow rejected at enqueue.
    FIFO = "fifo"
    #: Last-in first-out: under overload, fresh requests (whose clients
    #: are still waiting) are served before stale ones.
    LIFO = "lifo"
    #: FIFO plus CoDel-style sojourn control: once the head-of-line
    #: delay has exceeded ``codel_target`` continuously for
    #: ``codel_interval``, stale entries are dropped at dequeue.
    CODEL = "codel"


class BoundedQueue:
    """A bounded queue of ``(enqueue time, item)`` entries.

    Unlike :class:`repro.sim.Store`, a full queue never blocks the
    producer: :meth:`try_put` returns ``False`` (counted and, when an
    ``on_drop`` hook is set, reported) so backpressure propagates
    *immediately* instead of accumulating as hidden putter state.

    Consumption comes in two shapes: :meth:`get` returns an
    :class:`~repro.sim.Event` for simulation processes (waits while
    empty), and :meth:`poll` synchronously returns an item or ``None``
    for epoch-driven callers like the tiering policy.
    """

    def __init__(
        self,
        sim: Simulator,
        metrics: MetricScope,
        capacity: int,
        policy: QueuePolicy = QueuePolicy.FIFO,
        codel_target: float = 5e-3,
        codel_interval: float = 10e-3,
        on_drop: Optional[Callable[[Any, str], None]] = None,
    ):
        if capacity < 1:
            raise ConfigurationError("bounded queue capacity must be >= 1")
        if codel_target <= 0 or codel_interval <= 0:
            raise ConfigurationError("CoDel target/interval must be positive")
        self.sim = sim
        self.capacity = capacity
        self.policy = policy
        self.codel_target = codel_target
        self.codel_interval = codel_interval
        self.on_drop = on_drop
        self._entries: Deque[Tuple[float, Any]] = deque()
        self._getters: Deque[Event] = deque()
        #: When head-of-line sojourn first exceeded the CoDel target
        #: (None while below target).
        self._first_above: Optional[float] = None
        self._depth = metrics.gauge("depth")
        self._saturation = metrics.gauge("saturation")
        self._enqueued = metrics.counter("enqueued")
        self._dequeued = metrics.counter("dequeued")
        self._dropped_full = metrics.counter("dropped_full")
        self._dropped_deadline = metrics.counter("dropped_deadline")
        self._sojourn = metrics.histogram("sojourn")

    # -- gauges ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def depth(self) -> int:
        """Items currently waiting in the queue."""
        return len(self._entries)

    @property
    def saturation(self) -> float:
        """Fill fraction in [0, 1] — the backpressure signal."""
        return len(self._entries) / self.capacity

    @property
    def dropped_full(self) -> int:
        """Arrivals rejected because the queue was at capacity."""
        return self._dropped_full.value

    @property
    def dropped_deadline(self) -> int:
        """Items dropped at dequeue because their deadline had passed."""
        return self._dropped_deadline.value

    def _sync_gauges(self) -> None:
        self._depth.set(len(self._entries))
        self._saturation.set(len(self._entries) / self.capacity)

    # -- producing -------------------------------------------------------
    def try_put(self, item: Any) -> bool:
        """Enqueue ``item``; ``False`` (and a counted drop) when full."""
        if self._getters:
            # Direct handoff to a waiting consumer: zero sojourn.
            self._getters.popleft().succeed(item)
            self._enqueued.inc()
            self._dequeued.inc()
            self._sojourn.observe(0.0)
            return True
        if len(self._entries) >= self.capacity:
            self._dropped_full.inc()
            if self.on_drop is not None:
                self.on_drop(item, "full")
            return False
        self._entries.append((self.sim.now, item))
        self._enqueued.inc()
        self._sync_gauges()
        return True

    # -- consuming -------------------------------------------------------
    def _take(self) -> Optional[Any]:
        """Pop one entry per policy, applying CoDel deadline drops."""
        while self._entries:
            if self.policy is QueuePolicy.LIFO:
                enqueued_at, item = self._entries.pop()
            else:
                enqueued_at, item = self._entries.popleft()
            sojourn = self.sim.now - enqueued_at
            if self.policy is QueuePolicy.CODEL:
                if sojourn <= self.codel_target:
                    self._first_above = None
                elif self._first_above is None:
                    # First sighting above target: start the interval
                    # clock but still serve this entry.
                    self._first_above = self.sim.now
                elif self.sim.now - self._first_above >= self.codel_interval:
                    # Delay has been above target for a whole interval:
                    # this entry is stale — drop it and try the next.
                    self._dropped_deadline.inc()
                    if self.on_drop is not None:
                        self.on_drop(item, "deadline")
                    continue
            self._dequeued.inc()
            self._sojourn.observe(sojourn)
            self._sync_gauges()
            return item
        self._sync_gauges()
        return None

    def poll(self) -> Optional[Any]:
        """Synchronous dequeue: one item, or ``None`` when drained."""
        return self._take()

    def get(self) -> Event:
        """Process-facing dequeue: fires with the item (waits if empty)."""
        event = Event(self.sim)
        item = self._take()
        if item is not None:
            event.succeed(item)
        else:
            self._getters.append(event)
        return event
