"""SLO-driven brownout: step through declared degradation modes.

Instead of collapsing when demand exceeds capacity, the system *browns
out*: it sheds quality in declared, ordered steps — shrink batch sizes,
stop compaction and scrub work, serve stale reads — and steps back up
as the overload clears. The controller subscribes to an
:class:`~repro.telemetry.slo.SloMonitor`: it escalates one mode per
dwell period while any watched rule is firing, and de-escalates after
the objectives have been healthy for a recovery period.

Because evaluation happens on sampler ticks of the simulated clock,
the mode-transition log is canonical: same seed, byte-identical log —
E15 ships it inside its report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.telemetry import MetricScope
from repro.telemetry.slo import SloMonitor

__all__ = ["BrownoutMode", "BrownoutController"]


@dataclass(frozen=True)
class BrownoutMode:
    """One declared degradation step and the knobs it turns."""

    name: str
    #: Multiplier on batch/chunk sizes (1.0 = full batches).
    batch_scale: float = 1.0
    #: Whether background compaction keeps running in this mode.
    compaction_enabled: bool = True
    #: Whether reads may be served from possibly-stale fast state
    #: (skipping backend reads).
    serve_stale: bool = False


#: The default ladder, mildest first. Index 0 is normal operation.
DEFAULT_MODES: Tuple[BrownoutMode, ...] = (
    BrownoutMode("normal"),
    BrownoutMode("shrink-batches", batch_scale=0.5),
    BrownoutMode("no-compaction", batch_scale=0.5, compaction_enabled=False),
    BrownoutMode("stale-reads", batch_scale=0.25, compaction_enabled=False,
                 serve_stale=True),
)


class BrownoutController:
    """Steps a system through :class:`BrownoutMode` levels on SLO firings.

    Attach it to the same sampler that drives the monitor: construction
    appends :meth:`check` to ``sampler.on_sample`` *after* the monitor's
    own hook, so each tick sees the freshly evaluated firing state.
    """

    def __init__(
        self,
        monitor: SloMonitor,
        metrics: MetricScope,
        modes: Sequence[BrownoutMode] = DEFAULT_MODES,
        dwell: float = 5e-3,
        recovery: float = 10e-3,
        rules: Optional[Sequence[str]] = None,
    ):
        if len(modes) < 2:
            raise ConfigurationError("brownout needs at least two modes")
        if len({mode.name for mode in modes}) != len(modes):
            raise ConfigurationError("brownout mode names must be unique")
        if dwell <= 0 or recovery <= 0:
            raise ConfigurationError("dwell/recovery must be positive")
        self.monitor = monitor
        self._recorder = getattr(monitor.sampler.clock, "recorder", None)
        self.modes: Tuple[BrownoutMode, ...] = tuple(modes)
        self.dwell = dwell
        self.recovery = recovery
        #: Restrict to these rule names; None watches every monitor rule.
        self.rules = set(rules) if rules is not None else None
        self._level = 0
        self._last_transition: Optional[float] = None
        self._healthy_since: Optional[float] = None
        #: (time, from-mode, to-mode, direction) entries.
        self.transitions: List[Tuple[float, str, str, str]] = []
        self._mode_gauge = metrics.gauge("mode")
        self._escalations = metrics.counter("escalations")
        self._deescalations = metrics.counter("deescalations")
        monitor.sampler.on_sample.append(self.check)

    # -- reading ---------------------------------------------------------
    @property
    def level(self) -> int:
        """Current degradation level: 0 (normal) .. len(LADDER)-1 (deepest)."""
        return self._level

    @property
    def mode(self) -> BrownoutMode:
        """The named mode for the current level (NORMAL, DIM, ... BROWNOUT)."""
        return self.modes[self._level]

    @property
    def batch_scale(self) -> float:
        """Multiplier (0..1] callers apply to batch sizes at this level."""
        return self.mode.batch_scale

    @property
    def compaction_enabled(self) -> bool:
        """Whether background compaction may run at this level."""
        return self.mode.compaction_enabled

    @property
    def serve_stale(self) -> bool:
        """Whether reads may serve stale data to shed work at this level."""
        return self.mode.serve_stale

    def transition_log_bytes(self) -> bytes:
        """The mode history as canonical bytes (same seed, same bytes)."""
        return "\n".join(
            f"brownout {direction} {frm}->{to} at={at!r}"
            for at, frm, to, direction in self.transitions
        ).encode()

    # -- the control loop ------------------------------------------------
    def _firing(self) -> bool:
        firing = self.monitor.firing
        if self.rules is None:
            return bool(firing)
        return any(name in self.rules for name in firing)

    def _step(self, now: float, to_level: int, direction: str) -> None:
        frm = self.modes[self._level].name
        self._level = to_level
        self.transitions.append((now, frm, self.modes[to_level].name,
                                 direction))
        if self._recorder is not None:
            self._recorder.record(
                "brownout",
                f"brownout {direction} {frm}->{self.modes[to_level].name} "
                f"at={now!r}",
            )
        self._mode_gauge.set(to_level)
        self._last_transition = now
        if direction == "escalate":
            self._escalations.inc()
        else:
            self._deescalations.inc()

    def check(self, now: float) -> None:
        """One evaluation pass (normally invoked by the sampler)."""
        if self._firing():
            self._healthy_since = None
            if self._level + 1 < len(self.modes) and (
                self._last_transition is None
                or now - self._last_transition >= self.dwell
            ):
                self._step(now, self._level + 1, "escalate")
            return
        if self._level == 0:
            return
        if self._healthy_since is None:
            self._healthy_since = now
            return
        if now - self._healthy_since >= self.recovery:
            self._step(now, self._level - 1, "deescalate")
            self._healthy_since = now
