"""A mini-P4 frontend compiling match-action pipelines to eBPF.

Paper §2.2: "Apart from eBPF, we also consider P4 ... In restricted
capabilities (with only filtering and forwarding), there are P4 to eBPF
compilers available." This module implements exactly that restricted
subset: header field extraction, exact-match tables, and
filter/forward/mark actions — lowered to eBPF so the rest of the Hyperion
toolchain (verifier, HDL backend) is reused unchanged.

Example::

    pipeline = P4Pipeline("l4_filter")
    pipeline.header_field("dst_port", offset=2, size=2)
    table = pipeline.table("acl", key_field="dst_port")
    table.entry(22, action="drop")
    table.entry(80, action="forward", port=1)
    table.default(action="forward", port=0)
    program = pipeline.compile()      # an eBPF Program

The compiled program returns DROP (0) or FORWARD_BASE + port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.ebpf.builder import ProgramBuilder
from repro.ebpf.isa import Program

#: Return-value convention of compiled pipelines.
VERDICT_DROP = 0
FORWARD_BASE = 1


@dataclass(frozen=True)
class HeaderField:
    """A fixed-offset field in the packet header."""

    name: str
    offset: int
    size: int  # 1, 2, 4, or 8 bytes

    def __post_init__(self) -> None:
        if self.size not in (1, 2, 4, 8):
            raise ConfigurationError(f"unsupported field size {self.size}")
        if self.offset < 0:
            raise ConfigurationError("field offset must be non-negative")


@dataclass
class TableEntry:
    """One exact-match rule: match value, action, and egress port."""

    match_value: int
    action: str
    port: int = 0


class P4Table:
    """An exact-match table over one header field."""

    def __init__(self, name: str, key_field: str):
        self.name = name
        self.key_field = key_field
        self.entries: List[TableEntry] = []
        self.default_action: Optional[TableEntry] = None

    def entry(self, match_value: int, action: str, port: int = 0) -> "P4Table":
        self._check_action(action)
        if any(e.match_value == match_value for e in self.entries):
            raise ConfigurationError(
                f"duplicate match {match_value} in table {self.name}"
            )
        self.entries.append(TableEntry(match_value, action, port))
        return self

    def default(self, action: str, port: int = 0) -> "P4Table":
        self._check_action(action)
        self.default_action = TableEntry(-1, action, port)
        return self

    @staticmethod
    def _check_action(action: str) -> None:
        if action not in ("drop", "forward"):
            raise ConfigurationError(f"unknown action {action!r}")


class P4Pipeline:
    """An ordered chain of tables applied to each packet."""

    def __init__(self, name: str):
        self.name = name
        self.fields: Dict[str, HeaderField] = {}
        self.tables: List[P4Table] = []

    def header_field(self, name: str, offset: int, size: int) -> HeaderField:
        if name in self.fields:
            raise ConfigurationError(f"duplicate field {name}")
        field_def = HeaderField(name, offset, size)
        self.fields[name] = field_def
        return field_def

    def table(self, name: str, key_field: str) -> P4Table:
        if key_field not in self.fields:
            raise ConfigurationError(f"unknown key field {key_field!r}")
        table = P4Table(name, key_field)
        self.tables.append(table)
        return table

    # -- lowering to eBPF -----------------------------------------------------
    def compile(self) -> Program:
        """Lower to eBPF: a chain of compare/branch ladders.

        A "drop" terminates immediately; a "forward" records the port and
        falls through to the next table (later tables may override, P4's
        sequential-apply semantics); packets matching nothing anywhere use
        the last table's default.
        """
        if not self.tables:
            raise ConfigurationError("pipeline has no tables")
        for table in self.tables:
            if table.default_action is None:
                raise ConfigurationError(
                    f"table {table.name} needs a default action"
                )
        b = ProgramBuilder(self.name)
        # r6 holds the current verdict (starts as last table's default).
        b.mov("r6", _verdict(self.tables[-1].default_action))
        for t_index, table in enumerate(self.tables):
            field_def = self.fields[table.key_field]
            b.load(field_def.size, "r7", "r1", field_def.offset)
            next_table = f"table_{t_index + 1}"
            for e_index, entry in enumerate(table.entries):
                hit = f"t{t_index}_hit{e_index}"
                b.jeq("r7", entry.match_value, hit)
            # miss: apply this table's default, go on
            b.mov("r6", _verdict(table.default_action))
            b.jump(next_table)
            for e_index, entry in enumerate(table.entries):
                b.label(f"t{t_index}_hit{e_index}")
                if entry.action == "drop":
                    b.mov("r0", VERDICT_DROP)
                    b.exit()
                else:
                    b.mov("r6", _verdict(entry))
                    b.jump(next_table)
            b.label(next_table)
        b.mov("r0", "r6")
        b.exit()
        return b.build()


def _verdict(entry: TableEntry) -> int:
    if entry.action == "drop":
        return VERDICT_DROP
    return FORWARD_BASE + entry.port
