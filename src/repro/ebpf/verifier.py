"""A simplified symbolic-execution verifier for eBPF programs.

Paper §2.2: "due to the simplified nature of the eBPF instruction set, it is
possible to verify and reason about its execution. The Linux kernel already
ships with an eBPF verifier (with simplified symbolic execution checks)."

This verifier walks every control-flow path with abstract register states.
Each register is ``(type, offset)`` where offset tracks pointer arithmetic
with known immediates (stack pointers are relative to r10):

* reads of uninitialized registers are rejected;
* loads and stores require a pointer base; stack accesses are bounds-checked
  against the 512-byte frame, context accesses must be non-negative;
* a map-value pointer must be null-checked before dereference;
* back-edges (loops) are rejected unless ``allow_bounded_loops`` is set, in
  which case exploration is bounded by a state budget (kernel-style);
* every path must reach EXIT with r0 initialized;
* division/modulo by a zero immediate is rejected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.ebpf.helpers import (
    HELPER_MAP_DELETE,
    HELPER_MAP_LOOKUP,
    HELPER_MAP_UPDATE,
    HelperRegistry,
    standard_helpers,
)
from repro.ebpf.isa import Instruction, MEM_SIZE, Opcode, Program, STACK_SIZE


class RegType(enum.Enum):
    """Abstract type of a register during symbolic execution."""

    UNINIT = "uninit"
    SCALAR = "scalar"
    PTR_STACK = "ptr_stack"
    PTR_CTX = "ptr_ctx"
    PTR_MAP_VALUE = "ptr_map_value"
    PTR_MAP_VALUE_OR_NULL = "ptr_map_value_or_null"

    @property
    def is_pointer(self) -> bool:
        return self in (
            RegType.PTR_STACK,
            RegType.PTR_CTX,
            RegType.PTR_MAP_VALUE,
        )


#: One abstract register: (type, known pointer offset or None).
RegState = Tuple[RegType, Optional[int]]
State = Tuple[RegState, ...]

_UNINIT: RegState = (RegType.UNINIT, None)
_SCALAR: RegState = (RegType.SCALAR, None)


@dataclass
class VerifierError:
    """One rejection: the offending pc and a human-readable reason."""

    pc: int
    message: str

    def __str__(self) -> str:
        return f"pc {self.pc}: {self.message}"


@dataclass
class VerifierReport:
    """The verdict plus exploration statistics."""

    ok: bool
    errors: List[VerifierError] = field(default_factory=list)
    states_explored: int = 0
    instructions_covered: int = 0

    def reject_reason(self) -> Optional[str]:
        return str(self.errors[0]) if self.errors else None


_INITIAL_STATE: State = tuple(
    [_UNINIT]  # r0
    + [(RegType.PTR_CTX, 0)]  # r1 = context pointer
    + [_SCALAR]  # r2 = context length
    + [_UNINIT] * 7  # r3-r9
    + [(RegType.PTR_STACK, 0)]  # r10 = frame pointer (offset 0 == frame end)
)


class Verifier:
    """Path-sensitive abstract interpreter over a :class:`Program`."""

    def __init__(
        self,
        helpers: Optional[HelperRegistry] = None,
        allow_bounded_loops: bool = False,
        max_states: int = 100_000,
    ):
        self.helpers = helpers if helpers is not None else standard_helpers()
        self.allow_bounded_loops = allow_bounded_loops
        self.max_states = max_states

    def verify(self, program: Program) -> VerifierReport:
        report = VerifierReport(ok=True)
        if len(program) == 0:
            report.ok = False
            report.errors.append(VerifierError(0, "empty program"))
            return report

        self._structural_checks(program, report)
        if not report.ok:
            return report

        seen: Set[Tuple[int, State]] = set()
        covered: Set[int] = set()
        worklist: List[Tuple[int, State]] = [(0, _INITIAL_STATE)]
        while worklist:
            pc, state = worklist.pop()
            if (pc, state) in seen:
                continue
            seen.add((pc, state))
            if len(seen) > self.max_states:
                report.ok = False
                report.errors.append(
                    VerifierError(pc, "state budget exhausted (unbounded loop?)")
                )
                break
            insn = program.at_slot(pc)
            covered.add(pc)
            successors = self._step(pc, insn, state, report)
            if not report.ok:
                break
            for next_pc, next_state in successors:
                if next_pc <= pc and not self.allow_bounded_loops:
                    report.ok = False
                    report.errors.append(
                        VerifierError(
                            pc,
                            "back-edge detected; loops need allow_bounded_loops",
                        )
                    )
                    break
                worklist.append((next_pc, next_state))
            if not report.ok:
                break
        report.states_explored = len(seen)
        report.instructions_covered = len(covered)
        return report

    # -- structural checks -----------------------------------------------------
    def _structural_checks(self, program: Program, report: VerifierReport) -> None:
        length = len(program)
        pc = 0
        for insn in program:
            if insn.is_cond_jump or insn.opcode is Opcode.JA:
                target = pc + 1 + insn.offset
                if not 0 <= target < length:
                    report.ok = False
                    report.errors.append(
                        VerifierError(pc, f"jump target {target} out of range")
                    )
                else:
                    try:
                        program.at_slot(target)
                    except Exception:
                        report.ok = False
                        report.errors.append(
                            VerifierError(pc, "jump into the middle of LDDW")
                        )
            if insn.opcode is Opcode.CALL and not self.helpers.known(insn.imm):
                report.ok = False
                report.errors.append(
                    VerifierError(pc, f"call to unknown helper {insn.imm}")
                )
            if (
                insn.opcode in (Opcode.DIV, Opcode.MOD)
                and not insn.uses_reg_src
                and insn.imm == 0
            ):
                report.ok = False
                report.errors.append(VerifierError(pc, "division by zero immediate"))
            pc += insn.slots
        last = program.instructions[-1]
        if last.opcode not in (Opcode.EXIT, Opcode.JA):
            report.ok = False
            report.errors.append(
                VerifierError(length - 1, "program can fall off the end")
            )

    # -- symbolic step ---------------------------------------------------------
    def _step(
        self,
        pc: int,
        insn: Instruction,
        state: State,
        report: VerifierReport,
    ) -> List[Tuple[int, State]]:
        regs = list(state)
        op = insn.opcode

        def fail(message: str) -> List[Tuple[int, State]]:
            report.ok = False
            report.errors.append(VerifierError(pc, message))
            return []

        def require_init(reg: int) -> bool:
            if regs[reg][0] is RegType.UNINIT:
                fail(f"read of uninitialized register r{reg}")
                return False
            return True

        if op is Opcode.EXIT:
            if regs[0][0] is RegType.UNINIT:
                return fail("exit with uninitialized r0")
            return []

        if op is Opcode.CALL:
            if insn.imm in (HELPER_MAP_LOOKUP, HELPER_MAP_UPDATE, HELPER_MAP_DELETE):
                if not regs[2][0].is_pointer:
                    return fail("map helper needs a pointer key in r2")
            regs[0] = (
                (RegType.PTR_MAP_VALUE_OR_NULL, 0)
                if insn.imm == HELPER_MAP_LOOKUP
                else _SCALAR
            )
            for clobbered in range(1, 6):
                regs[clobbered] = _UNINIT
            return [(pc + 1, tuple(regs))]

        if op is Opcode.LDDW:
            regs[insn.dst] = _SCALAR
            return [(pc + 2, tuple(regs))]

        if insn.is_alu:
            return self._step_alu(pc, insn, regs, fail, require_init)

        if insn.is_load:
            base_type, base_offset = regs[insn.src]
            message = self._check_access(base_type, base_offset, insn.offset, MEM_SIZE[op])
            if message:
                return fail(message)
            regs[insn.dst] = _SCALAR
            return [(pc + 1, tuple(regs))]

        if insn.is_store:
            base_type, base_offset = regs[insn.dst]
            message = self._check_access(base_type, base_offset, insn.offset, MEM_SIZE[op])
            if message:
                return fail(message)
            if op.value.startswith("stx") and not require_init(insn.src):
                return []
            return [(pc + 1, tuple(regs))]

        if op is Opcode.JA:
            return [(pc + 1 + insn.offset, tuple(regs))]

        if insn.is_cond_jump:
            if not require_init(insn.dst):
                return []
            if insn.uses_reg_src and not require_init(insn.src):
                return []
            taken = list(regs)
            fallthrough = list(regs)
            # Null-check refinement: `jeq rX, 0` / `jne rX, 0` on a
            # maybe-null map value splits into null/non-null branches.
            if (
                not insn.uses_reg_src
                and insn.imm == 0
                and regs[insn.dst][0] is RegType.PTR_MAP_VALUE_OR_NULL
            ):
                if op is Opcode.JEQ:
                    taken[insn.dst] = _SCALAR  # the null branch
                    fallthrough[insn.dst] = (RegType.PTR_MAP_VALUE, 0)
                elif op is Opcode.JNE:
                    taken[insn.dst] = (RegType.PTR_MAP_VALUE, 0)
                    fallthrough[insn.dst] = _SCALAR
            return [
                (pc + 1 + insn.offset, tuple(taken)),
                (pc + 1, tuple(fallthrough)),
            ]

        return fail(f"unhandled opcode {op}")

    def _step_alu(self, pc, insn, regs, fail, require_init):
        op = insn.opcode
        if op is Opcode.MOV:
            if insn.uses_reg_src:
                if not require_init(insn.src):
                    return []
                regs[insn.dst] = regs[insn.src]
            else:
                regs[insn.dst] = _SCALAR
            return [(pc + 1, tuple(regs))]
        if op is Opcode.NEG:
            if not require_init(insn.dst):
                return []
            if regs[insn.dst][0] is not RegType.SCALAR:
                return fail("NEG on a pointer")
            return [(pc + 1, tuple(regs))]
        if not require_init(insn.dst):
            return []
        if insn.uses_reg_src and not require_init(insn.src):
            return []
        src_type = regs[insn.src][0] if insn.uses_reg_src else RegType.SCALAR
        dst_type, dst_offset = regs[insn.dst]
        if dst_type.is_pointer or dst_type is RegType.PTR_MAP_VALUE_OR_NULL:
            if op not in (Opcode.ADD, Opcode.SUB) or src_type is not RegType.SCALAR:
                return fail(f"illegal pointer arithmetic ({op.value})")
            if insn.uses_reg_src or dst_offset is None:
                # Adding an unknown scalar: the offset becomes unknown.
                regs[insn.dst] = (dst_type, None)
            else:
                delta = insn.imm if op is Opcode.ADD else -insn.imm
                regs[insn.dst] = (dst_type, dst_offset + delta)
            return [(pc + 1, tuple(regs))]
        if src_type is not RegType.SCALAR:
            return fail("pointer used as scalar operand")
        regs[insn.dst] = _SCALAR
        return [(pc + 1, tuple(regs))]

    def _check_access(
        self,
        base_type: RegType,
        base_offset: Optional[int],
        insn_offset: int,
        size: int,
    ) -> Optional[str]:
        """Returns an error message, or None if the access is legal."""
        if base_type is RegType.PTR_MAP_VALUE_OR_NULL:
            return "map value dereferenced without a null check"
        if not base_type.is_pointer:
            return f"memory access via non-pointer ({base_type.value})"
        if base_offset is None:
            return "access via pointer with unknown offset"
        effective = base_offset + insn_offset
        if base_type is RegType.PTR_STACK:
            # Relative to r10 (frame end): the legal window is [-512, 0).
            if not (-STACK_SIZE <= effective and effective + size <= 0):
                return (
                    f"stack access [{effective}, {effective + size}) outside "
                    f"[-{STACK_SIZE}, 0)"
                )
        elif effective < 0:
            return f"negative {base_type.value} offset {effective}"
        return None
