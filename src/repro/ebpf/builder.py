"""A fluent, label-aware program builder — the in-Python frontend.

The paper (§2.2) treats eBPF as the IR that any frontend can target; the
builder is this reproduction's frontend, used by the applications to emit
offload programs without writing assembler text.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.common.errors import ProtocolError
from repro.ebpf.isa import COND_JUMPS, Instruction, Opcode, Program

Operand = Union[int, str]  # an immediate, or a register name like "r3"


def _is_reg(value: Operand) -> bool:
    return isinstance(value, str) and value.startswith("r")


def _reg(value: Operand) -> int:
    if not _is_reg(value):
        raise ProtocolError(f"expected register name, got {value!r}")
    return int(value[1:])


class ProgramBuilder:
    """Accumulates instructions; ``build()`` resolves label references."""

    def __init__(self, name: str = "prog"):
        self.name = name
        self._items: List[Tuple] = []  # ("insn", Instruction) | ("branch", ...)
        self._labels: Dict[str, int] = {}
        self._slot = 0

    # -- structure -----------------------------------------------------------
    def label(self, name: str) -> "ProgramBuilder":
        if name in self._labels:
            raise ProtocolError(f"duplicate label {name!r}")
        self._labels[name] = self._slot
        return self

    def _emit(self, insn: Instruction) -> "ProgramBuilder":
        self._items.append(("insn", insn))
        self._slot += insn.slots
        return self

    def _emit_branch(self, opcode: Opcode, dst: int, src: int, imm: int,
                     uses_reg_src: bool, target: str) -> "ProgramBuilder":
        self._items.append(
            ("branch", opcode, dst, src, imm, uses_reg_src, target, self._slot)
        )
        self._slot += 1
        return self

    # -- ALU -----------------------------------------------------------------
    def _alu(self, opcode: Opcode, dst: str, src: Operand) -> "ProgramBuilder":
        if _is_reg(src):
            return self._emit(
                Instruction(opcode, dst=_reg(dst), src=_reg(src), uses_reg_src=True)
            )
        return self._emit(Instruction(opcode, dst=_reg(dst), imm=int(src)))

    def mov(self, dst: str, src: Operand) -> "ProgramBuilder":
        return self._alu(Opcode.MOV, dst, src)

    def add(self, dst: str, src: Operand) -> "ProgramBuilder":
        return self._alu(Opcode.ADD, dst, src)

    def sub(self, dst: str, src: Operand) -> "ProgramBuilder":
        return self._alu(Opcode.SUB, dst, src)

    def mul(self, dst: str, src: Operand) -> "ProgramBuilder":
        return self._alu(Opcode.MUL, dst, src)

    def div(self, dst: str, src: Operand) -> "ProgramBuilder":
        return self._alu(Opcode.DIV, dst, src)

    def mod(self, dst: str, src: Operand) -> "ProgramBuilder":
        return self._alu(Opcode.MOD, dst, src)

    def and_(self, dst: str, src: Operand) -> "ProgramBuilder":
        return self._alu(Opcode.AND, dst, src)

    def or_(self, dst: str, src: Operand) -> "ProgramBuilder":
        return self._alu(Opcode.OR, dst, src)

    def xor(self, dst: str, src: Operand) -> "ProgramBuilder":
        return self._alu(Opcode.XOR, dst, src)

    def lsh(self, dst: str, src: Operand) -> "ProgramBuilder":
        return self._alu(Opcode.LSH, dst, src)

    def rsh(self, dst: str, src: Operand) -> "ProgramBuilder":
        return self._alu(Opcode.RSH, dst, src)

    def arsh(self, dst: str, src: Operand) -> "ProgramBuilder":
        return self._alu(Opcode.ARSH, dst, src)

    def neg(self, dst: str) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.NEG, dst=_reg(dst)))

    def lddw(self, dst: str, imm: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.LDDW, dst=_reg(dst), imm=imm))

    # -- memory --------------------------------------------------------------
    def load(self, size: int, dst: str, base: str, offset: int = 0) -> "ProgramBuilder":
        opcode = {1: Opcode.LDXB, 2: Opcode.LDXH, 4: Opcode.LDXW, 8: Opcode.LDXDW}[size]
        return self._emit(
            Instruction(opcode, dst=_reg(dst), src=_reg(base), offset=offset)
        )

    def store(self, size: int, base: str, offset: int, src: Operand) -> "ProgramBuilder":
        if _is_reg(src):
            opcode = {
                1: Opcode.STXB, 2: Opcode.STXH, 4: Opcode.STXW, 8: Opcode.STXDW,
            }[size]
            return self._emit(
                Instruction(opcode, dst=_reg(base), src=_reg(src), offset=offset)
            )
        opcode = {1: Opcode.STB, 2: Opcode.STH, 4: Opcode.STW, 8: Opcode.STDW}[size]
        return self._emit(
            Instruction(opcode, dst=_reg(base), offset=offset, imm=int(src))
        )

    # -- control flow ----------------------------------------------------------
    def jump(self, target: str) -> "ProgramBuilder":
        return self._emit_branch(Opcode.JA, 0, 0, 0, False, target)

    def branch(self, opcode: Opcode, dst: str, src: Operand, target: str) -> "ProgramBuilder":
        if opcode not in COND_JUMPS:
            raise ProtocolError(f"{opcode} is not a conditional jump")
        if _is_reg(src):
            return self._emit_branch(opcode, _reg(dst), _reg(src), 0, True, target)
        return self._emit_branch(opcode, _reg(dst), 0, int(src), False, target)

    def jeq(self, dst: str, src: Operand, target: str) -> "ProgramBuilder":
        return self.branch(Opcode.JEQ, dst, src, target)

    def jne(self, dst: str, src: Operand, target: str) -> "ProgramBuilder":
        return self.branch(Opcode.JNE, dst, src, target)

    def jgt(self, dst: str, src: Operand, target: str) -> "ProgramBuilder":
        return self.branch(Opcode.JGT, dst, src, target)

    def jge(self, dst: str, src: Operand, target: str) -> "ProgramBuilder":
        return self.branch(Opcode.JGE, dst, src, target)

    def jlt(self, dst: str, src: Operand, target: str) -> "ProgramBuilder":
        return self.branch(Opcode.JLT, dst, src, target)

    def jle(self, dst: str, src: Operand, target: str) -> "ProgramBuilder":
        return self.branch(Opcode.JLE, dst, src, target)

    def call(self, helper_id: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.CALL, imm=helper_id))

    def exit(self) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.EXIT))

    # -- finalize ----------------------------------------------------------
    def build(self) -> Program:
        instructions: List[Instruction] = []
        for item in self._items:
            if item[0] == "insn":
                instructions.append(item[1])
                continue
            __, opcode, dst, src, imm, uses_reg_src, target, slot = item
            if target not in self._labels:
                raise ProtocolError(f"undefined label {target!r}")
            offset = self._labels[target] - (slot + 1)
            instructions.append(
                Instruction(
                    opcode, dst=dst, src=src, offset=offset, imm=imm,
                    uses_reg_src=uses_reg_src,
                )
            )
        return Program(instructions, name=self.name)
