"""eBPF: the accelerator-independent intermediate representation (§2.2).

The paper's position: FPGA programming should decouple frontends from HDL
backends through an IR that is (1) domain-neutral, (2) verifiable, and
(3) retargetable — and eBPF is that IR. This package implements the eBPF
ISA with an assembler/disassembler, an interpreter VM with maps and
helpers, and a verifier performing simplified symbolic execution (register
state tracking, bounds checks, termination) in the spirit of the Linux
kernel's verifier the paper cites.

The :mod:`repro.hdl` package consumes the same instructions to generate
hardware pipelines, completing the frontend -> IR -> HDL flow of §2.2.
"""

from repro.ebpf.isa import (
    BPF_REG_COUNT,
    Instruction,
    Opcode,
    Program,
)
from repro.ebpf.asm import assemble, disassemble
from repro.ebpf.builder import ProgramBuilder
from repro.ebpf.maps import ArrayMap, BpfMap, HashMap
from repro.ebpf.helpers import HelperRegistry, standard_helpers
from repro.ebpf.vm import BpfVm, ExecutionResult
from repro.ebpf.verifier import Verifier, VerifierReport

__all__ = [
    "Instruction",
    "Opcode",
    "Program",
    "BPF_REG_COUNT",
    "assemble",
    "disassemble",
    "ProgramBuilder",
    "BpfMap",
    "HashMap",
    "ArrayMap",
    "HelperRegistry",
    "standard_helpers",
    "BpfVm",
    "ExecutionResult",
    "Verifier",
    "VerifierReport",
]
