"""The eBPF instruction set: encoding, decoding, and classification.

Instructions follow the documented eBPF ISA: 64-bit fixed-width encoding
with ``(opcode:8, dst:4, src:4, offset:16, imm:32)`` fields, eleven 64-bit
registers (r0-r10), and a 512-byte stack. LDDW (64-bit immediate load)
occupies two instruction slots, as on real hardware.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.common.errors import ProtocolError

BPF_REG_COUNT = 11
STACK_SIZE = 512

# -- opcode building blocks (instruction class in the low 3 bits) -----------
BPF_LD = 0x00
BPF_LDX = 0x01
BPF_ST = 0x02
BPF_STX = 0x03
BPF_ALU = 0x04
BPF_JMP = 0x05
BPF_ALU64 = 0x07

# source modifier
BPF_K = 0x00  # immediate
BPF_X = 0x08  # register

# size modifier for loads/stores
BPF_W = 0x00  # 4 bytes
BPF_H = 0x08  # 2 bytes
BPF_B = 0x10  # 1 byte
BPF_DW = 0x18  # 8 bytes

BPF_MEM = 0x60
BPF_IMM = 0x00


class Opcode(enum.Enum):
    """Mnemonic-level opcodes (source/size variants handled separately)."""

    # ALU (arithmetic works on 64-bit registers; ALU32 not modeled)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    OR = "or"
    AND = "and"
    LSH = "lsh"
    RSH = "rsh"
    NEG = "neg"
    MOD = "mod"
    XOR = "xor"
    MOV = "mov"
    ARSH = "arsh"
    # memory
    LDXB = "ldxb"
    LDXH = "ldxh"
    LDXW = "ldxw"
    LDXDW = "ldxdw"
    STXB = "stxb"
    STXH = "stxh"
    STXW = "stxw"
    STXDW = "stxdw"
    STB = "stb"
    STH = "sth"
    STW = "stw"
    STDW = "stdw"
    LDDW = "lddw"
    # control flow
    JA = "ja"
    JEQ = "jeq"
    JNE = "jne"
    JGT = "jgt"
    JGE = "jge"
    JLT = "jlt"
    JLE = "jle"
    JSET = "jset"
    JSGT = "jsgt"
    JSGE = "jsge"
    JSLT = "jslt"
    JSLE = "jsle"
    CALL = "call"
    EXIT = "exit"


ALU_OPS = {
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.DIV,
    Opcode.OR,
    Opcode.AND,
    Opcode.LSH,
    Opcode.RSH,
    Opcode.NEG,
    Opcode.MOD,
    Opcode.XOR,
    Opcode.MOV,
    Opcode.ARSH,
}

LOAD_OPS = {Opcode.LDXB, Opcode.LDXH, Opcode.LDXW, Opcode.LDXDW}
STORE_REG_OPS = {Opcode.STXB, Opcode.STXH, Opcode.STXW, Opcode.STXDW}
STORE_IMM_OPS = {Opcode.STB, Opcode.STH, Opcode.STW, Opcode.STDW}
STORE_OPS = STORE_REG_OPS | STORE_IMM_OPS

COND_JUMPS = {
    Opcode.JEQ,
    Opcode.JNE,
    Opcode.JGT,
    Opcode.JGE,
    Opcode.JLT,
    Opcode.JLE,
    Opcode.JSET,
    Opcode.JSGT,
    Opcode.JSGE,
    Opcode.JSLT,
    Opcode.JSLE,
}
JUMP_OPS = COND_JUMPS | {Opcode.JA, Opcode.EXIT, Opcode.CALL}

MEM_SIZE = {
    Opcode.LDXB: 1,
    Opcode.LDXH: 2,
    Opcode.LDXW: 4,
    Opcode.LDXDW: 8,
    Opcode.STXB: 1,
    Opcode.STXH: 2,
    Opcode.STXW: 4,
    Opcode.STXDW: 8,
    Opcode.STB: 1,
    Opcode.STH: 2,
    Opcode.STW: 4,
    Opcode.STDW: 8,
}

_ALU_CODE = {
    Opcode.ADD: 0x0,
    Opcode.SUB: 0x1,
    Opcode.MUL: 0x2,
    Opcode.DIV: 0x3,
    Opcode.OR: 0x4,
    Opcode.AND: 0x5,
    Opcode.LSH: 0x6,
    Opcode.RSH: 0x7,
    Opcode.NEG: 0x8,
    Opcode.MOD: 0x9,
    Opcode.XOR: 0xA,
    Opcode.MOV: 0xB,
    Opcode.ARSH: 0xC,
}

_JMP_CODE = {
    Opcode.JA: 0x0,
    Opcode.JEQ: 0x1,
    Opcode.JGT: 0x2,
    Opcode.JGE: 0x3,
    Opcode.JSET: 0x4,
    Opcode.JNE: 0x5,
    Opcode.JSGT: 0x6,
    Opcode.JSGE: 0x7,
    Opcode.CALL: 0x8,
    Opcode.EXIT: 0x9,
    Opcode.JLT: 0xA,
    Opcode.JLE: 0xB,
    Opcode.JSLT: 0xC,
    Opcode.JSLE: 0xD,
}

_SIZE_BITS = {1: BPF_B, 2: BPF_H, 4: BPF_W, 8: BPF_DW}


@dataclass(frozen=True)
class Instruction:
    """One decoded eBPF instruction.

    ``uses_reg_src`` distinguishes the BPF_X (register source) form from the
    BPF_K (immediate) form for ALU and conditional-jump opcodes.
    """

    opcode: Opcode
    dst: int = 0
    src: int = 0
    offset: int = 0
    imm: int = 0
    uses_reg_src: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.dst < BPF_REG_COUNT:
            raise ProtocolError(f"bad dst register r{self.dst}")
        if not 0 <= self.src < BPF_REG_COUNT:
            raise ProtocolError(f"bad src register r{self.src}")
        if not -(1 << 15) <= self.offset < (1 << 15):
            raise ProtocolError(f"offset {self.offset} out of 16-bit range")

    # -- classification ------------------------------------------------------
    @property
    def is_alu(self) -> bool:
        return self.opcode in ALU_OPS

    @property
    def is_load(self) -> bool:
        return self.opcode in LOAD_OPS or self.opcode is Opcode.LDDW

    @property
    def is_store(self) -> bool:
        return self.opcode in STORE_OPS

    @property
    def is_jump(self) -> bool:
        return self.opcode in JUMP_OPS

    @property
    def is_cond_jump(self) -> bool:
        return self.opcode in COND_JUMPS

    @property
    def slots(self) -> int:
        """Instruction slots consumed (LDDW takes two)."""
        return 2 if self.opcode is Opcode.LDDW else 1

    # -- binary encoding -----------------------------------------------------
    def encode(self) -> bytes:
        """Encode into 8 (or 16, for LDDW) little-endian bytes."""
        opcode_byte = self._opcode_byte()
        regs = (self.src << 4) | self.dst
        if self.opcode is Opcode.LDDW:
            low = self.imm & 0xFFFF_FFFF
            high = (self.imm >> 32) & 0xFFFF_FFFF
            first = struct.pack("<BBhI", opcode_byte, regs, 0, low)
            second = struct.pack("<BBhI", 0, 0, 0, high)
            return first + second
        imm32 = self.imm & 0xFFFF_FFFF
        return struct.pack("<BBhI", opcode_byte, regs, self.offset, imm32)

    def _opcode_byte(self) -> int:
        op = self.opcode
        if op in ALU_OPS:
            src = BPF_X if self.uses_reg_src else BPF_K
            return BPF_ALU64 | src | (_ALU_CODE[op] << 4)
        if op in JUMP_OPS:
            src = BPF_X if self.uses_reg_src else BPF_K
            return BPF_JMP | src | (_JMP_CODE[op] << 4)
        if op in LOAD_OPS:
            return BPF_LDX | BPF_MEM | _SIZE_BITS[MEM_SIZE[op]]
        if op in STORE_REG_OPS:
            return BPF_STX | BPF_MEM | _SIZE_BITS[MEM_SIZE[op]]
        if op in STORE_IMM_OPS:
            return BPF_ST | BPF_MEM | _SIZE_BITS[MEM_SIZE[op]]
        if op is Opcode.LDDW:
            return BPF_LD | BPF_IMM | BPF_DW
        raise ProtocolError(f"cannot encode {op}")

    @classmethod
    def decode(cls, raw: bytes) -> "Instruction":
        """Decode one instruction (16 bytes required for LDDW)."""
        if len(raw) < 8:
            raise ProtocolError("instruction shorter than 8 bytes")
        opcode_byte, regs, offset, imm = struct.unpack("<BBhI", raw[:8])
        dst = regs & 0xF
        src = (regs >> 4) & 0xF
        insn_class = opcode_byte & 0x07
        if insn_class == BPF_LD and opcode_byte == (BPF_LD | BPF_IMM | BPF_DW):
            if len(raw) < 16:
                raise ProtocolError("truncated LDDW")
            __, __, __, high = struct.unpack("<BBhI", raw[8:16])
            return cls(Opcode.LDDW, dst=dst, src=src, imm=(high << 32) | imm)
        if insn_class in (BPF_ALU64, BPF_ALU):
            code = (opcode_byte >> 4) & 0xF
            op = {v: k for k, v in _ALU_CODE.items()}[code]
            return cls(
                op,
                dst=dst,
                src=src,
                offset=offset,
                imm=_sign32(imm),
                uses_reg_src=bool(opcode_byte & BPF_X),
            )
        if insn_class == BPF_JMP:
            code = (opcode_byte >> 4) & 0xF
            op = {v: k for k, v in _JMP_CODE.items()}[code]
            return cls(
                op,
                dst=dst,
                src=src,
                offset=offset,
                imm=_sign32(imm),
                uses_reg_src=bool(opcode_byte & BPF_X),
            )
        size = {BPF_B: 1, BPF_H: 2, BPF_W: 4, BPF_DW: 8}[opcode_byte & 0x18]
        if insn_class == BPF_LDX:
            op = {1: Opcode.LDXB, 2: Opcode.LDXH, 4: Opcode.LDXW, 8: Opcode.LDXDW}[size]
        elif insn_class == BPF_STX:
            op = {1: Opcode.STXB, 2: Opcode.STXH, 4: Opcode.STXW, 8: Opcode.STXDW}[size]
        elif insn_class == BPF_ST:
            op = {1: Opcode.STB, 2: Opcode.STH, 4: Opcode.STW, 8: Opcode.STDW}[size]
        else:
            raise ProtocolError(f"cannot decode opcode byte {opcode_byte:#x}")
        return cls(op, dst=dst, src=src, offset=offset, imm=_sign32(imm))


def _sign32(value: int) -> int:
    return value - (1 << 32) if value >= (1 << 31) else value


@dataclass
class Program:
    """A sequence of instructions plus metadata.

    ``pc`` indexing counts LDDW as occupying two slots, matching kernel
    semantics, so jump offsets computed against slot indices are correct.
    """

    instructions: List[Instruction] = field(default_factory=list)
    name: str = "prog"

    def __post_init__(self) -> None:
        self._by_slot: List[Optional[Instruction]] = []
        for insn in self.instructions:
            self._by_slot.append(insn)
            if insn.slots == 2:
                self._by_slot.append(None)  # LDDW second half

    def __len__(self) -> int:
        return len(self._by_slot)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def at_slot(self, pc: int) -> Instruction:
        if not 0 <= pc < len(self._by_slot):
            raise ProtocolError(f"pc {pc} out of range")
        insn = self._by_slot[pc]
        if insn is None:
            raise ProtocolError(f"pc {pc} lands in the middle of LDDW")
        return insn

    def encode(self) -> bytes:
        return b"".join(insn.encode() for insn in self.instructions)

    @classmethod
    def decode(cls, raw: bytes, name: str = "prog") -> "Program":
        if len(raw) % 8 != 0:
            raise ProtocolError("program length not a multiple of 8")
        instructions = []
        index = 0
        while index < len(raw):
            insn = Instruction.decode(raw[index : index + 16])
            instructions.append(insn)
            index += 8 * insn.slots
        return cls(instructions, name=name)
