"""A two-pass textual assembler and disassembler for eBPF.

Syntax (one instruction per line, ``;`` comments, ``name:`` labels)::

    start:
        mov   r0, 0
        lddw  r1, 0x1122334455667788
        ldxdw r2, [r1+8]
        stxdw [r10-8], r2
        jeq   r2, 0, done
        add   r0, r2
        ja    start      ; loops are assembler-legal; the verifier decides
    done:
        exit
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.common.errors import ProtocolError
from repro.ebpf.isa import (
    ALU_OPS,
    COND_JUMPS,
    Instruction,
    LOAD_OPS,
    Opcode,
    Program,
    STORE_IMM_OPS,
    STORE_REG_OPS,
)

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_REG_RE = re.compile(r"^r(\d+)$")
_MEM_RE = re.compile(r"^\[r(\d+)\s*([+-]\s*\d+)?\]$")


def _parse_reg(token: str) -> int:
    match = _REG_RE.match(token)
    if not match:
        raise ProtocolError(f"expected register, got {token!r}")
    return int(match.group(1))


def _parse_int(token: str) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise ProtocolError(f"expected integer, got {token!r}") from exc


def _parse_mem(token: str) -> Tuple[int, int]:
    match = _MEM_RE.match(token.replace(" ", ""))
    if not match:
        raise ProtocolError(f"expected memory operand, got {token!r}")
    reg = int(match.group(1))
    offset = int(match.group(2) or "0")
    return reg, offset


def _split_operands(rest: str) -> List[str]:
    return [part.strip() for part in rest.split(",") if part.strip()]


def assemble(source: str, name: str = "prog") -> Program:
    """Assemble text into a :class:`Program`."""
    # Pass 1: strip comments, collect labels with their slot indices.
    lines: List[Tuple[str, str]] = []  # (mnemonic, operand string)
    labels: Dict[str, int] = {}
    slot = 0
    for raw_line in source.splitlines():
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            label = label_match.group(1)
            if label in labels:
                raise ProtocolError(f"duplicate label {label!r}")
            labels[label] = slot
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        lines.append((mnemonic, rest))
        slot += 2 if mnemonic == "lddw" else 1

    # Pass 2: emit instructions.
    instructions: List[Instruction] = []
    slot = 0
    for mnemonic, rest in lines:
        insn = _assemble_line(mnemonic, rest, slot, labels)
        instructions.append(insn)
        slot += insn.slots
    return Program(instructions, name=name)


def _branch_offset(target: str, slot: int, labels: Dict[str, int]) -> int:
    """Relative offset in slots from the *next* instruction."""
    if target.startswith(("+", "-")) and target[1:].isdigit():
        return int(target)
    if target in labels:
        return labels[target] - (slot + 1)
    raise ProtocolError(f"unknown branch target {target!r}")


def _assemble_line(
    mnemonic: str, rest: str, slot: int, labels: Dict[str, int]
) -> Instruction:
    try:
        opcode = Opcode(mnemonic)
    except ValueError as exc:
        raise ProtocolError(f"unknown mnemonic {mnemonic!r}") from exc
    ops = _split_operands(rest)

    if opcode is Opcode.EXIT:
        return Instruction(Opcode.EXIT)
    if opcode is Opcode.CALL:
        return Instruction(Opcode.CALL, imm=_parse_int(ops[0]))
    if opcode is Opcode.JA:
        return Instruction(Opcode.JA, offset=_branch_offset(ops[0], slot, labels))
    if opcode in COND_JUMPS:
        if len(ops) != 3:
            raise ProtocolError(f"{mnemonic} needs dst, src/imm, target")
        dst = _parse_reg(ops[0])
        offset = _branch_offset(ops[2], slot, labels)
        if _REG_RE.match(ops[1]):
            return Instruction(
                opcode, dst=dst, src=_parse_reg(ops[1]), offset=offset,
                uses_reg_src=True,
            )
        return Instruction(opcode, dst=dst, imm=_parse_int(ops[1]), offset=offset)
    if opcode is Opcode.LDDW:
        return Instruction(Opcode.LDDW, dst=_parse_reg(ops[0]), imm=_parse_int(ops[1]))
    if opcode in LOAD_OPS:
        dst = _parse_reg(ops[0])
        src, offset = _parse_mem(ops[1])
        return Instruction(opcode, dst=dst, src=src, offset=offset)
    if opcode in STORE_REG_OPS:
        dst, offset = _parse_mem(ops[0])
        return Instruction(opcode, dst=dst, src=_parse_reg(ops[1]), offset=offset)
    if opcode in STORE_IMM_OPS:
        dst, offset = _parse_mem(ops[0])
        return Instruction(opcode, dst=dst, imm=_parse_int(ops[1]), offset=offset)
    if opcode in ALU_OPS:
        dst = _parse_reg(ops[0])
        if opcode is Opcode.NEG:
            return Instruction(Opcode.NEG, dst=dst)
        if len(ops) != 2:
            raise ProtocolError(f"{mnemonic} needs dst and src/imm")
        if _REG_RE.match(ops[1]):
            return Instruction(opcode, dst=dst, src=_parse_reg(ops[1]), uses_reg_src=True)
        return Instruction(opcode, dst=dst, imm=_parse_int(ops[1]))
    raise ProtocolError(f"cannot assemble {mnemonic!r}")


def disassemble(program: Program) -> str:
    """Render a program back into assembler text (offsets, not labels)."""
    lines = []
    for insn in program:
        lines.append(_disassemble_insn(insn))
    return "\n".join(lines)


def _disassemble_insn(insn: Instruction) -> str:
    op = insn.opcode
    name = op.value
    if op is Opcode.EXIT:
        return "exit"
    if op is Opcode.CALL:
        return f"call {insn.imm}"
    if op is Opcode.JA:
        return f"ja {insn.offset:+d}"
    if op in COND_JUMPS:
        src = f"r{insn.src}" if insn.uses_reg_src else str(insn.imm)
        return f"{name} r{insn.dst}, {src}, {insn.offset:+d}"
    if op is Opcode.LDDW:
        return f"lddw r{insn.dst}, {insn.imm:#x}"
    if op in LOAD_OPS:
        return f"{name} r{insn.dst}, [r{insn.src}{insn.offset:+d}]"
    if op in STORE_REG_OPS:
        return f"{name} [r{insn.dst}{insn.offset:+d}], r{insn.src}"
    if op in STORE_IMM_OPS:
        return f"{name} [r{insn.dst}{insn.offset:+d}], {insn.imm}"
    if op is Opcode.NEG:
        return f"neg r{insn.dst}"
    src = f"r{insn.src}" if insn.uses_reg_src else str(insn.imm)
    return f"{name} r{insn.dst}, {src}"
