"""eBPF maps: the state shared between programs and the outside world.

Maps are how eBPF programs keep "traffic-flow proportional state" (paper
§2.4, fail2ban/load-balancer workloads): the program updates them per
packet, and the control plane reads them out.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.common.errors import CapacityError, ProtocolError


class BpfMap:
    """Common interface: fixed-size keys and values, bounded entry count."""

    def __init__(self, key_size: int, value_size: int, max_entries: int):
        if key_size < 1 or value_size < 1 or max_entries < 1:
            raise ProtocolError("map dimensions must be positive")
        self.key_size = key_size
        self.value_size = value_size
        self.max_entries = max_entries

    def _check_key(self, key: bytes) -> None:
        if len(key) != self.key_size:
            raise ProtocolError(
                f"key is {len(key)} bytes, map expects {self.key_size}"
            )

    def _check_value(self, value: bytes) -> None:
        if len(value) != self.value_size:
            raise ProtocolError(
                f"value is {len(value)} bytes, map expects {self.value_size}"
            )

    def lookup(self, key: bytes) -> Optional[bytearray]:
        raise NotImplementedError

    def update(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError

    def delete(self, key: bytes) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class HashMap(BpfMap):
    """BPF_MAP_TYPE_HASH: arbitrary fixed-size keys."""

    def __init__(self, key_size: int, value_size: int, max_entries: int = 1024):
        super().__init__(key_size, value_size, max_entries)
        self._entries: Dict[bytes, bytearray] = {}

    def lookup(self, key: bytes) -> Optional[bytearray]:
        self._check_key(key)
        return self._entries.get(bytes(key))

    def update(self, key: bytes, value: bytes) -> None:
        self._check_key(key)
        self._check_value(value)
        key = bytes(key)
        if key not in self._entries and len(self._entries) >= self.max_entries:
            raise CapacityError("map full")
        self._entries[key] = bytearray(value)

    def delete(self, key: bytes) -> bool:
        self._check_key(key)
        return self._entries.pop(bytes(key), None) is not None

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        for key, value in self._entries.items():
            yield key, bytes(value)

    def __len__(self) -> int:
        return len(self._entries)


class ArrayMap(BpfMap):
    """BPF_MAP_TYPE_ARRAY: dense u32 indices, pre-allocated values."""

    def __init__(self, value_size: int, max_entries: int):
        super().__init__(key_size=4, value_size=value_size, max_entries=max_entries)
        self._values = [bytearray(value_size) for _ in range(max_entries)]

    def _index(self, key: bytes) -> int:
        self._check_key(key)
        index = int.from_bytes(key, "little")
        if index >= self.max_entries:
            raise CapacityError(f"index {index} >= {self.max_entries}")
        return index

    def lookup(self, key: bytes) -> Optional[bytearray]:
        return self._values[self._index(key)]

    def lookup_index(self, index: int) -> bytearray:
        if not 0 <= index < self.max_entries:
            raise CapacityError(f"index {index} out of range")
        return self._values[index]

    def update(self, key: bytes, value: bytes) -> None:
        self._check_value(value)
        self._values[self._index(key)][:] = value

    def delete(self, key: bytes) -> bool:
        # Array entries cannot be deleted, only zeroed (kernel semantics).
        self._values[self._index(key)][:] = bytes(self.value_size)
        return True

    def __len__(self) -> int:
        return self.max_entries
