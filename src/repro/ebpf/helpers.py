"""Helper functions callable from eBPF programs (the CALL instruction).

Helper ids follow the kernel's numbering where one exists. Each helper
receives the VM and the five argument registers r1-r5 and returns the new
r0.
"""

from __future__ import annotations

from typing import Callable, Dict, List, TYPE_CHECKING

from repro.common.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ebpf.vm import BpfVm

Helper = Callable[["BpfVm", List[int]], int]

HELPER_MAP_LOOKUP = 1
HELPER_MAP_UPDATE = 2
HELPER_MAP_DELETE = 3
HELPER_KTIME_GET_NS = 5
HELPER_TRACE_PRINTK = 6
HELPER_GET_PRANDOM_U32 = 7


class HelperRegistry:
    """id -> helper function table, per execution environment."""

    def __init__(self) -> None:
        self._helpers: Dict[int, Helper] = {}

    def register(self, helper_id: int, fn: Helper) -> None:
        if helper_id in self._helpers:
            raise ProtocolError(f"helper {helper_id} already registered")
        self._helpers[helper_id] = fn

    def known(self, helper_id: int) -> bool:
        return helper_id in self._helpers

    def call(self, helper_id: int, vm: "BpfVm", args: List[int]) -> int:
        helper = self._helpers.get(helper_id)
        if helper is None:
            raise ProtocolError(f"unknown helper {helper_id}")
        return helper(vm, args)

    def ids(self) -> List[int]:
        return sorted(self._helpers)


def _map_lookup(vm: "BpfVm", args: List[int]) -> int:
    bpf_map = vm.map_by_fd(args[0])
    key = vm.read_memory(args[1], bpf_map.key_size)
    value = bpf_map.lookup(key)
    if value is None:
        return 0
    return vm.expose_buffer(value)


def _map_update(vm: "BpfVm", args: List[int]) -> int:
    bpf_map = vm.map_by_fd(args[0])
    key = vm.read_memory(args[1], bpf_map.key_size)
    value = vm.read_memory(args[2], bpf_map.value_size)
    bpf_map.update(key, value)
    return 0


def _map_delete(vm: "BpfVm", args: List[int]) -> int:
    bpf_map = vm.map_by_fd(args[0])
    key = vm.read_memory(args[1], bpf_map.key_size)
    return 0 if bpf_map.delete(key) else -1 & 0xFFFF_FFFF_FFFF_FFFF


def _ktime_get_ns(vm: "BpfVm", args: List[int]) -> int:
    return vm.clock_ns()


def _trace_printk(vm: "BpfVm", args: List[int]) -> int:
    vm.trace_log.append(tuple(args))
    return 0


def _get_prandom_u32(vm: "BpfVm", args: List[int]) -> int:
    return vm.rng.getrandbits(32)


def standard_helpers() -> HelperRegistry:
    """The default helper set every Hyperion execution environment offers."""
    registry = HelperRegistry()
    registry.register(HELPER_MAP_LOOKUP, _map_lookup)
    registry.register(HELPER_MAP_UPDATE, _map_update)
    registry.register(HELPER_MAP_DELETE, _map_delete)
    registry.register(HELPER_KTIME_GET_NS, _ktime_get_ns)
    registry.register(HELPER_TRACE_PRINTK, _trace_printk)
    registry.register(HELPER_GET_PRANDOM_U32, _get_prandom_u32)
    return registry
