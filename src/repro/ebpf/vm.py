"""The eBPF interpreter: one of "many possible implementations of an eBPF
execution environment" (paper §2.2; cf. ubpf).

Memory model
------------
The VM exposes a segmented 64-bit pointer space: the high 16 bits select a
region, the low 48 bits are an offset. Region 1 is the 512-byte stack
(r10 points one past its end), region 2 is the program context (the packet
or input buffer), and further regions are map values exposed by helpers.
Every access is bounds-checked; faults raise :class:`ProtocolError`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ProtocolError
from repro.ebpf.helpers import HelperRegistry, standard_helpers
from repro.ebpf.isa import (
    Instruction,
    MEM_SIZE,
    Opcode,
    Program,
    STACK_SIZE,
)
from repro.ebpf.maps import BpfMap

_U64 = (1 << 64) - 1
REGION_SHIFT = 48
STACK_REGION = 1
CONTEXT_REGION = 2
_FIRST_DYNAMIC_REGION = 16


def _u64(value: int) -> int:
    return value & _U64


def _s64(value: int) -> int:
    value &= _U64
    return value - (1 << 64) if value >= (1 << 63) else value


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    return_value: int
    instructions_executed: int
    helper_calls: int
    context: bytearray

    @property
    def r0(self) -> int:
        return self.return_value


class BpfVm:
    """An interpreter instance bound to a program, maps, and helpers."""

    def __init__(
        self,
        program: Program,
        maps: Optional[Dict[int, BpfMap]] = None,
        helpers: Optional[HelperRegistry] = None,
        max_instructions: int = 1_000_000,
        rng: Optional[random.Random] = None,
    ):
        self.program = program
        self.maps = maps or {}
        self.helpers = helpers if helpers is not None else standard_helpers()
        self.max_instructions = max_instructions
        self.rng = rng if rng is not None else random.Random(0)
        self.trace_log: List[tuple] = []
        self._clock_ns = 0
        self._regions: Dict[int, bytearray] = {}
        self._next_region = _FIRST_DYNAMIC_REGION

    # -- environment hooks ---------------------------------------------------
    def map_by_fd(self, fd: int) -> BpfMap:
        bpf_map = self.maps.get(fd)
        if bpf_map is None:
            raise ProtocolError(f"no map with fd {fd}")
        return bpf_map

    def clock_ns(self) -> int:
        self._clock_ns += 1
        return self._clock_ns

    def set_clock_ns(self, value: int) -> None:
        self._clock_ns = value

    def expose_buffer(self, buffer: bytearray) -> int:
        """Register a live buffer as a region; returns a VM pointer to it."""
        region = self._next_region
        self._next_region += 1
        self._regions[region] = buffer
        return region << REGION_SHIFT

    # -- memory --------------------------------------------------------------
    def _region_buffer(self, pointer: int) -> tuple:
        region = pointer >> REGION_SHIFT
        offset = pointer & ((1 << REGION_SHIFT) - 1)
        buffer = self._regions.get(region)
        if buffer is None:
            raise ProtocolError(f"dereference of invalid pointer {pointer:#x}")
        return buffer, offset

    def read_memory(self, pointer: int, size: int) -> bytes:
        buffer, offset = self._region_buffer(pointer)
        if offset + size > len(buffer):
            raise ProtocolError(
                f"out-of-bounds read at {pointer:#x} ({size} bytes)"
            )
        return bytes(buffer[offset : offset + size])

    def write_memory(self, pointer: int, data: bytes) -> None:
        buffer, offset = self._region_buffer(pointer)
        if offset + len(data) > len(buffer):
            raise ProtocolError(
                f"out-of-bounds write at {pointer:#x} ({len(data)} bytes)"
            )
        buffer[offset : offset + len(data)] = data

    # -- execution -----------------------------------------------------------
    def run(self, context: bytes = b"") -> ExecutionResult:
        """Execute the program with ``context`` as its input (r1)."""
        self._regions = {
            STACK_REGION: bytearray(STACK_SIZE),
            CONTEXT_REGION: bytearray(context),
        }
        self._next_region = _FIRST_DYNAMIC_REGION
        regs = [0] * 11
        regs[1] = CONTEXT_REGION << REGION_SHIFT
        regs[2] = len(context)
        regs[10] = (STACK_REGION << REGION_SHIFT) + STACK_SIZE

        pc = 0
        executed = 0
        helper_calls = 0
        while True:
            if executed >= self.max_instructions:
                raise ProtocolError(
                    f"instruction budget exhausted ({self.max_instructions})"
                )
            insn = self.program.at_slot(pc)
            executed += 1
            op = insn.opcode

            if op is Opcode.EXIT:
                return ExecutionResult(
                    return_value=regs[0],
                    instructions_executed=executed,
                    helper_calls=helper_calls,
                    context=self._regions[CONTEXT_REGION],
                )
            if op is Opcode.CALL:
                args = [regs[1], regs[2], regs[3], regs[4], regs[5]]
                regs[0] = _u64(self.helpers.call(insn.imm, self, args))
                # r1-r5 are clobbered by calls (kernel semantics).
                regs[1:6] = [0, 0, 0, 0, 0]
                helper_calls += 1
                pc += 1
                continue
            if op is Opcode.LDDW:
                regs[insn.dst] = _u64(insn.imm)
                pc += 2
                continue
            if insn.is_alu:
                regs[insn.dst] = self._alu(insn, regs)
                pc += 1
                continue
            if insn.is_load:
                pointer = _u64(regs[insn.src] + insn.offset)
                size = MEM_SIZE[op]
                raw = self.read_memory(pointer, size)
                regs[insn.dst] = int.from_bytes(raw, "little")
                pc += 1
                continue
            if insn.is_store:
                pointer = _u64(regs[insn.dst] + insn.offset)
                size = MEM_SIZE[op]
                value = regs[insn.src] if op.value.startswith("stx") else _u64(insn.imm)
                self.write_memory(pointer, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))
                pc += 1
                continue
            if op is Opcode.JA:
                pc += 1 + insn.offset
                continue
            if insn.is_cond_jump:
                taken = self._evaluate_jump(insn, regs)
                pc += 1 + (insn.offset if taken else 0)
                continue
            raise ProtocolError(f"unhandled opcode {op}")

    def _alu(self, insn: Instruction, regs: List[int]) -> int:
        op = insn.opcode
        src = regs[insn.src] if insn.uses_reg_src else _u64(insn.imm)
        dst = regs[insn.dst]
        if op is Opcode.MOV:
            return src
        if op is Opcode.ADD:
            return _u64(dst + src)
        if op is Opcode.SUB:
            return _u64(dst - src)
        if op is Opcode.MUL:
            return _u64(dst * src)
        if op is Opcode.DIV:
            return _u64(dst // src) if src else 0  # div-by-zero yields 0
        if op is Opcode.MOD:
            return _u64(dst % src) if src else dst
        if op is Opcode.OR:
            return dst | src
        if op is Opcode.AND:
            return dst & src
        if op is Opcode.XOR:
            return dst ^ src
        if op is Opcode.LSH:
            return _u64(dst << (src & 63))
        if op is Opcode.RSH:
            return dst >> (src & 63)
        if op is Opcode.ARSH:
            return _u64(_s64(dst) >> (src & 63))
        if op is Opcode.NEG:
            return _u64(-dst)
        raise ProtocolError(f"unhandled ALU op {op}")

    def _evaluate_jump(self, insn: Instruction, regs: List[int]) -> bool:
        op = insn.opcode
        src = regs[insn.src] if insn.uses_reg_src else _u64(insn.imm)
        dst = regs[insn.dst]
        if op is Opcode.JEQ:
            return dst == src
        if op is Opcode.JNE:
            return dst != src
        if op is Opcode.JGT:
            return dst > src
        if op is Opcode.JGE:
            return dst >= src
        if op is Opcode.JLT:
            return dst < src
        if op is Opcode.JLE:
            return dst <= src
        if op is Opcode.JSET:
            return bool(dst & src)
        if op is Opcode.JSGT:
            return _s64(dst) > _s64(src)
        if op is Opcode.JSGE:
            return _s64(dst) >= _s64(src)
        if op is Opcode.JSLT:
            return _s64(dst) < _s64(src)
        if op is Opcode.JSLE:
            return _s64(dst) <= _s64(src)
        raise ProtocolError(f"unhandled jump {op}")
