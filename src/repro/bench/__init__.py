"""Continuous-benchmark harness: run the eval suite, emit BENCH artifacts.

Every run executes the registered experiments under their default
configurations, extracts the headline metrics (each tagged with a
direction: lower-is-better latencies, higher-is-better throughputs, or
plain informational values), and renders a canonical JSON payload.

The payload is **deterministic by construction**, with one deliberate
exception: it contains simulated-time measurements, counts, and SHA-256
digests of the canonical telemetry artifacts (registry snapshots, SLO
alert logs, Prometheus text, Chrome trace JSON). Wall-clock durations
are reported on stdout for the human reading the run, but never enter
the artifact — the same seed must produce byte-identical
``BENCH_<n>.json`` files on every machine.

The exception is the ``sim`` experiment (:mod:`repro.bench.micro`): the
simulator's *own* throughput (events/sec, RPC round-trips/sec, histogram
observes/sec) is inherently a wall-clock number. Those metrics are
tagged ``volatile`` in the payload, and :func:`publish` tolerates them:
a run whose payload differs from the newest artifact *only* in volatile
values, all within :data:`REGRESSION_THRESHOLD`, is treated as
unchanged and writes nothing — machine jitter does not churn the
append-only history, while a drop past the gate still lands as a new
artifact and fails ``--check``.

Artifact protocol, mirroring the repo's append-only evaluation history:

* artifacts live at the repo root (or ``--output-dir``) as
  ``BENCH_1.json``, ``BENCH_2.json``, ...;
* if the new payload is byte-identical to the newest artifact, nothing is
  written — the benchmark is unchanged;
* otherwise the next number is written and compared against the previous
  artifact: any tracked latency up by more than
  :data:`REGRESSION_THRESHOLD` (or throughput down by more than it) is
  flagged as a regression, which ``python -m repro.bench --check`` turns
  into a nonzero exit for CI.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bench.micro import run_micro
from repro.eval.analytics import run_analytics
from repro.eval.autoscale import run_autoscale
from repro.eval.chaos import run_chaos
from repro.eval.compiler import run_compiler
from repro.eval.corfu import run_corfu
from repro.eval.efficiency import run_efficiency
from repro.eval.fail2ban import run_fail2ban
from repro.eval.georep import run_georep
from repro.eval.kvssd import run_kvssd
from repro.eval.loadbalancer import run_loadbalancer
from repro.eval.overload import run_overload
from repro.eval.p2pdma import run_p2pdma
from repro.eval.pointer_chase import run_pointer_chase
from repro.eval.predictability import run_predictability
from repro.eval.reconfig import run_reconfig
from repro.eval.recovery import run_recovery
from repro.eval.scaleout import run_scaleout
from repro.eval.telemetry import run_telemetry
from repro.eval.translation import run_translation
from repro.eval.verify import run_verify

#: Relative change on a directional metric that counts as a regression.
REGRESSION_THRESHOLD = 0.20

#: Version stamp of the payload schema, bumped on incompatible changes.
ARTIFACT_FORMAT = 1

ARTIFACT_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")

LOWER = "lower"
HIGHER = "higher"
INFO = "info"


@dataclass(frozen=True)
class Metric:
    """One tracked number: its value, unit, and which direction is good.

    ``volatile`` marks a wall-clock measurement (the ``sim``
    micro-benchmarks): still gated directionally, but :func:`publish`
    does not write a new artifact for volatile-only drift inside the
    regression threshold. The key is only serialized when set, so every
    pre-existing artifact's bytes are unchanged by its existence.
    """

    value: float
    better: str = INFO
    unit: str = ""
    volatile: bool = False

    def payload(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "value": self.value, "better": self.better, "unit": self.unit,
        }
        if self.volatile:
            data["volatile"] = True
        return data


@dataclass(frozen=True)
class BenchSpec:
    """One benchmarked experiment: how to run it and what to extract."""

    key: str
    title: str
    run: Callable[..., Any]
    extract: Callable[[Any], Dict[str, Metric]]
    #: Whether ``run`` accepts a ``seed=`` keyword (threads ``--seed``).
    seeded: bool = False


def _digest(data) -> str:
    if isinstance(data, str):
        data = data.encode()
    return hashlib.sha256(data).hexdigest()[:16]


# ---------------------------------------------------------------------------
# metric extractors — one per experiment, defaults-config headline numbers
# ---------------------------------------------------------------------------

def _efficiency_metrics(report) -> Dict[str, Metric]:
    return {
        "energy_ratio": Metric(report.energy_ratio, HIGHER, "x"),
        "volume_ratio": Metric(report.volume_ratio, HIGHER, "x"),
        "hyperion_tdp_w": Metric(report.hyperion_tdp_w, LOWER, "W"),
    }


def _pointer_chase_metrics(points) -> Dict[str, Metric]:
    deepest = max(points, key=lambda p: (p.propagation, p.keys))
    return {
        "deepest_offload_latency_s": Metric(
            deepest.offload_latency, LOWER, "s"),
        "deepest_speedup": Metric(deepest.speedup, HIGHER, "x"),
        "mean_speedup": Metric(
            sum(p.speedup for p in points) / len(points), HIGHER, "x"),
    }


def _fail2ban_metrics(results) -> Dict[str, Metric]:
    dpu, base = results
    return {
        "dpu_throughput_pps": Metric(dpu.throughput_pps, HIGHER, "pps"),
        "dpu_per_packet_s": Metric(dpu.per_packet, LOWER, "s"),
        "speedup": Metric(base.total_time / dpu.total_time, HIGHER, "x"),
        "banned": Metric(dpu.banned, INFO, "packets"),
    }


def _loadbalancer_metrics(results) -> Dict[str, Metric]:
    overflow = next(r for r in results if r.policy == "overflow")
    drop = next(r for r in results if r.policy == "drop")
    return {
        "overflow_mean_latency_s": Metric(overflow.mean_latency, LOWER, "s"),
        "overflow_broken_connections": Metric(
            overflow.broken_connections, LOWER, "conns"),
        "drop_broken_connections": Metric(
            drop.broken_connections, INFO, "conns"),
    }


def _translation_metrics(points) -> Dict[str, Metric]:
    largest = max(points, key=lambda p: p.working_set_bytes)
    return {
        "largest_segment_translation_s": Metric(
            largest.segment_translation_time, LOWER, "s"),
        "largest_segment_advantage": Metric(
            largest.segment_advantage, HIGHER, "x"),
        "largest_tlb_hit_rate": Metric(largest.tlb_hit_rate, INFO, "frac"),
    }


def _predictability_metrics(results) -> Dict[str, Metric]:
    by_name = {r.system: r for r in results}
    hw = by_name["hyperion-pipeline"]
    cpu = by_name["cpu-interpreter"]
    return {
        "hw_p99_s": Metric(hw.p99, LOWER, "s"),
        "hw_jitter_ratio": Metric(hw.jitter_ratio, LOWER, "x"),
        "hw_interval_p99_max_s": Metric(hw.interval_p99_max, LOWER, "s"),
        "hw_energy_per_op_j": Metric(hw.energy_per_op_j, LOWER, "J"),
        "cpu_p99_s": Metric(cpu.p99, INFO, "s"),
        "hw_sampled_points": Metric(hw.sampled_points, INFO, "samples"),
    }


def _reconfig_metrics(report) -> Dict[str, Metric]:
    return {
        "mean_reconfig_s": Metric(report.mean_reconfig, LOWER, "s"),
        "max_reconfig_s": Metric(report.max_reconfig, LOWER, "s"),
        "utilization": Metric(report.utilization, HIGHER, "frac"),
    }


def _corfu_metrics(points) -> Dict[str, Metric]:
    busiest = max(points, key=lambda p: p.clients)
    return {
        "peak_throughput_aps": Metric(busiest.throughput, HIGHER, "appends/s"),
        "failover_reads_ok": Metric(
            float(all(p.failover_reads_ok for p in points)), INFO, "bool"),
    }


def _analytics_metrics(points) -> Dict[str, Metric]:
    largest = max(points, key=lambda p: p.rows)
    return {
        "largest_dpu_time_s": Metric(largest.dpu_time, LOWER, "s"),
        "largest_speedup": Metric(largest.speedup, HIGHER, "x"),
        "largest_bytes_moved": Metric(largest.dpu_bytes, LOWER, "bytes"),
    }


def _compiler_metrics(rows) -> Dict[str, Metric]:
    verified = sum(1 for r in rows if r.verified)
    return {
        "programs_verified": Metric(verified, HIGHER, "programs"),
        "programs_total": Metric(len(rows), INFO, "programs"),
    }


def _recovery_metrics(points) -> Dict[str, Metric]:
    largest = max(points, key=lambda p: p.durable_segments)
    return {
        "largest_recovery_time_s": Metric(largest.recovery_time, LOWER, "s"),
        "largest_persist_bytes": Metric(largest.persist_bytes, INFO, "bytes"),
        "data_intact": Metric(
            float(all(p.data_intact for p in points)), INFO, "bool"),
    }


def _kvssd_metrics(points) -> Dict[str, Metric]:
    metrics: Dict[str, Metric] = {}
    for p in points:
        metrics[f"{p.transport}_ops_per_second"] = Metric(
            p.ops_per_second, HIGHER, "ops/s")
        metrics[f"{p.transport}_p99_get_s"] = Metric(p.p99_get, LOWER, "s")
        metrics[f"{p.transport}_sampled_points"] = Metric(
            p.sampled_points, INFO, "samples")
    return metrics


def _chaos_metrics(report) -> Dict[str, Metric]:
    return {
        "availability": Metric(report.availability, HIGHER, "frac"),
        "p99_latency_s": Metric(report.p99_latency, LOWER, "s"),
        "p99_inflation": Metric(report.p99_inflation, LOWER, "x"),
        "failovers": Metric(report.failovers, INFO, "count"),
        "sampler_ticks": Metric(report.samples, INFO, "samples"),
        "slo_alerts_fired": Metric(report.slo_alerts_fired, INFO, "alerts"),
        "alert_log_digest": Metric(0.0, INFO, _digest(report.slo_alert_log)),
        "series_digest": Metric(0.0, INFO, _digest(report.series)),
        "telemetry_digest": Metric(0.0, INFO, _digest(report.telemetry)),
    }


def _overload_metrics(report) -> Dict[str, Metric]:
    return {
        "goodput_at_2x_ops": Metric(report.goodput_at_2x, HIGHER, "ops/s"),
        "goodput_retention_at_2x": Metric(
            report.goodput_retention_at_2x, HIGHER, "frac"),
        "controlled_p99_at_2x_s": Metric(
            next(p.p99_latency for p in report.controlled
                 if p.multiple == 2.0), LOWER, "s"),
        "uncontrolled_collapse_ratio": Metric(
            report.uncontrolled_collapse_ratio, INFO, "frac"),
        "brownout_transitions": Metric(
            report.brownout_transitions, INFO, "count"),
        "slo_alerts_fired": Metric(report.slo_alerts_fired, INFO, "alerts"),
        "brownout_log_digest": Metric(0.0, INFO, _digest(report.brownout_log)),
        "report_digest": Metric(0.0, INFO, _digest(report.canonical_bytes())),
        "telemetry_digest": Metric(0.0, INFO, _digest(report.telemetry)),
    }


def _scaleout_metrics(report) -> Dict[str, Metric]:
    top = max(report.points, key=lambda p: (p.optimized, p.dpus))
    return {
        "speedup_8dpu": Metric(report.speedup_8dpu, HIGHER, "x"),
        "batching_gain_8dpu": Metric(
            report.batching_gain_8dpu, HIGHER, "x"),
        "top_goodput_ops": Metric(top.goodput, HIGHER, "ops/s"),
        "top_p99_s": Metric(top.p99_latency, LOWER, "s"),
        "event_failures": Metric(report.event.failures, LOWER, "ops"),
        "event_p99_inflation": Metric(
            report.event.p99_inflation, LOWER, "x"),
        "event_keys_moved": Metric(report.event.keys_moved, INFO, "keys"),
        "event_migration_s": Metric(
            report.event.migration_duration, INFO, "s"),
        "report_digest": Metric(0.0, INFO, _digest(report.canonical_bytes())),
        "telemetry_digest": Metric(0.0, INFO, _digest(report.telemetry)),
    }


def _georep_metrics(report) -> Dict[str, Metric]:
    drill = report.drill
    by_mode = {point.mode: point for point in report.modes}
    return {
        "rpo_s": Metric(drill.rpo_seconds, LOWER, "s"),
        "rto_detect_s": Metric(drill.rto_detect, LOWER, "s"),
        "rto_steady_s": Metric(drill.rto_steady, LOWER, "s"),
        "lost_acked_writes": Metric(drill.lost_acked_writes, LOWER, "writes"),
        "diverged_keys": Metric(drill.diverged_keys, LOWER, "keys"),
        "failover_goodput_retention": Metric(
            drill.retention_during, HIGHER, "frac"),
        "failover_goodput_floor_ops": Metric(
            drill.goodput_floor, HIGHER, "ops/s"),
        "async_put_p99_s": Metric(by_mode["async"].put_p99, LOWER, "s"),
        "sync_put_p99_s": Metric(by_mode["sync"].put_p99, LOWER, "s"),
        "async_peak_lag_s": Metric(by_mode["async"].peak_lag, INFO, "s"),
        "failovers": Metric(drill.failovers, INFO, "count"),
        "replayed_writes": Metric(drill.replayed_writes, INFO, "writes"),
        "stale_reads_served": Metric(
            drill.stale_reads_served, INFO, "reads"),
        "report_digest": Metric(0.0, INFO, _digest(report.canonical_bytes())),
        "telemetry_digest": Metric(0.0, INFO, _digest(report.telemetry)),
    }


def _autoscale_metrics(report) -> Dict[str, Metric]:
    auto = report.variant("autoscaled")
    peak = report.variant("static-peak")
    low = report.variant("static-min")
    return {
        "capacity_ratio": Metric(report.capacity_ratio, LOWER, "x"),
        "p99_vs_peak": Metric(report.p99_ratio, LOWER, "x"),
        "auto_goodput": Metric(auto.goodput, HIGHER, "req/s"),
        "auto_worst_window_p99_s": Metric(
            auto.worst_window_p99, LOWER, "s"),
        "auto_breach_fraction": Metric(auto.breach_fraction, LOWER, "frac"),
        "peak_breach_fraction": Metric(peak.breach_fraction, INFO, "frac"),
        "min_breach_fraction": Metric(low.breach_fraction, INFO, "frac"),
        "auto_dpu_seconds": Metric(auto.dpu_seconds, LOWER, "s"),
        "scale_outs": Metric(auto.scale_outs, INFO, "count"),
        "drains": Metric(auto.drains, INFO, "count"),
        "accepted": Metric(1.0 if report.accepted else 0.0, HIGHER, "bool"),
        "report_digest": Metric(0.0, INFO, _digest(report.canonical_bytes())),
        "telemetry_digest": Metric(0.0, INFO, _digest(report.telemetry)),
    }


def _verify_metrics(report) -> Dict[str, Metric]:
    by_mode = {outcome.mode: outcome for outcome in report.planted.outcomes}
    caught = (not by_mode["async"].linearizable
              and by_mode["quorum"].linearizable
              and by_mode["sync"].linearizable)
    return {
        "schedules_clean": Metric(report.clean_schedules, HIGHER, "schedules"),
        "schedules_total": Metric(len(report.schedules), INFO, "schedules"),
        "history_ops": Metric(report.total_ops, INFO, "ops"),
        "checker_states": Metric(report.checker_states, LOWER, "states"),
        "planted_bug_caught": Metric(float(caught), HIGHER, "bool"),
        "minimal_plan_specs": Metric(
            report.planted.minimal_specs, LOWER, "specs"),
        "shrink_runs": Metric(report.planted.shrink_runs, INFO, "runs"),
        "replay_deterministic": Metric(
            float(report.planted.replay_matches), HIGHER, "bool"),
        "report_digest": Metric(0.0, INFO, _digest(report.canonical_bytes())),
    }


def _p2pdma_metrics(points) -> Dict[str, Metric]:
    hyperion = [p for p in points if p.path == "hyperion"]
    largest = max(hyperion, key=lambda p: p.transfer_size)
    return {
        "hyperion_goodput_bps": Metric(largest.goodput, HIGHER, "B/s"),
        "hyperion_per_transfer_s": Metric(largest.per_transfer, LOWER, "s"),
    }


def _telemetry_metrics(report) -> Dict[str, Metric]:
    return {
        "span_count": Metric(report.span_count, INFO, "spans"),
        "substrates": Metric(len(report.substrates), HIGHER, "substrates"),
        "snapshot_digest": Metric(0.0, INFO, _digest(report.snapshot)),
        "prometheus_digest": Metric(0.0, INFO, _digest(report.prometheus)),
        "chrome_trace_digest": Metric(
            0.0, INFO, _digest(report.chrome_trace)),
    }


def _sim_metrics(report) -> Dict[str, Metric]:
    return {
        "engine_events_per_sec": Metric(
            report.events_per_sec, HIGHER, "events/s", volatile=True),
        "rpc_roundtrips_per_sec": Metric(
            report.rpc_roundtrips_per_sec, HIGHER, "rt/s", volatile=True),
        "histogram_observes_per_sec": Metric(
            report.observes_per_sec, HIGHER, "obs/s", volatile=True),
        "engine_events_run": Metric(report.events_run, INFO, "events"),
        "rpc_roundtrips": Metric(report.rpc_roundtrips, INFO, "calls"),
        "histogram_observes": Metric(report.observes, INFO, "samples"),
    }


#: The benchmark suite: every simulated experiment at default config.
SPECS: Tuple[BenchSpec, ...] = (
    BenchSpec("e1", "volume + energy efficiency",
              run_efficiency, _efficiency_metrics),
    BenchSpec("e2", "pointer chasing",
              run_pointer_chase, _pointer_chase_metrics, seeded=True),
    BenchSpec("e3", "fail2ban",
              run_fail2ban, _fail2ban_metrics, seeded=True),
    BenchSpec("e4", "load balancer overflow",
              run_loadbalancer, _loadbalancer_metrics, seeded=True),
    BenchSpec("e5", "segment vs page translation",
              run_translation, _translation_metrics, seeded=True),
    BenchSpec("e6", "predictability + energy",
              run_predictability, _predictability_metrics),
    BenchSpec("e7", "partial reconfiguration",
              run_reconfig, _reconfig_metrics),
    BenchSpec("e8", "Corfu shared log",
              run_corfu, _corfu_metrics),
    BenchSpec("e9", "Parquet/Arrow end to end",
              run_analytics, _analytics_metrics),
    BenchSpec("e10", "eBPF->HDL compiler corpus",
              run_compiler, _compiler_metrics),
    BenchSpec("e11", "persistence + recovery",
              run_recovery, _recovery_metrics),
    BenchSpec("e12", "KV-SSD transports",
              run_kvssd, _kvssd_metrics),
    BenchSpec("e13", "chaos storm + replicated failover",
              run_chaos, _chaos_metrics, seeded=True),
    BenchSpec("e15", "overload: collapse vs graceful brownout",
              run_overload, _overload_metrics, seeded=True),
    BenchSpec("e16", "scale-out data plane: sharding + batching + cache",
              run_scaleout, _scaleout_metrics, seeded=True),
    BenchSpec("e17", "geo-replication: WAN log shipping + region-loss drill",
              run_georep, _georep_metrics, seeded=True),
    BenchSpec("e19", "consistency verification: chaos search + shrinking",
              run_verify, _verify_metrics, seeded=True),
    BenchSpec("e20", "traffic plane: SLO-driven autoscaling vs static fleets",
              run_autoscale, _autoscale_metrics, seeded=True),
    BenchSpec("p2p", "NIC->SSD bounce vs P2P DMA vs Hyperion",
              run_p2pdma, _p2pdma_metrics),
    BenchSpec("telemetry", "unified telemetry plane",
              run_telemetry, _telemetry_metrics),
    BenchSpec("sim", "simulator-core micro-benchmarks (wall-clock)",
              run_micro, _sim_metrics, seeded=True),
)


@dataclass
class BenchRun:
    """One full suite execution: canonical payload + wall-clock sidecar."""

    seed: Optional[int]
    payload: Dict[str, Any]
    #: experiment key -> wall-clock seconds. Stdout only, never serialized.
    wall_clock: Dict[str, float] = field(default_factory=dict)

    def canonical_bytes(self) -> bytes:
        text = json.dumps(self.payload, sort_keys=True, indent=2)
        return (text + "\n").encode()


def run_suite(seed: Optional[int] = None,
              keys: Optional[List[str]] = None) -> BenchRun:
    """Run the registered experiments and build the canonical payload."""
    selected = [s for s in SPECS if keys is None or s.key in keys]
    experiments: Dict[str, Any] = {}
    wall: Dict[str, float] = {}
    for spec in selected:
        started = time.perf_counter()
        if spec.seeded and seed is not None:
            result = spec.run(seed=seed)
        else:
            result = spec.run()
        wall[spec.key] = time.perf_counter() - started
        metrics = spec.extract(result)
        experiments[spec.key] = {
            "title": spec.title,
            "metrics": {
                name: metric.payload()
                for name, metric in sorted(metrics.items())
            },
        }
    payload = {
        "format": ARTIFACT_FORMAT,
        "seed": seed,
        "experiments": experiments,
    }
    return BenchRun(seed=seed, payload=payload, wall_clock=wall)


# ---------------------------------------------------------------------------
# artifact numbering + regression comparison
# ---------------------------------------------------------------------------

def discover_artifacts(directory: Path) -> List[Tuple[int, Path]]:
    """All ``BENCH_<n>.json`` files in *directory*, ordered by number."""
    found = []
    for path in directory.iterdir():
        match = ARTIFACT_PATTERN.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


@dataclass(frozen=True)
class Delta:
    """One metric's movement between two artifacts."""

    experiment: str
    metric: str
    old: float
    new: float
    better: str
    unit: str

    @property
    def relative(self) -> float:
        if self.old == 0:
            return 0.0 if self.new == 0 else float("inf")
        return (self.new - self.old) / abs(self.old)

    @property
    def regressed(self) -> bool:
        if self.better == LOWER:
            return self.relative > REGRESSION_THRESHOLD
        if self.better == HIGHER:
            return self.relative < -REGRESSION_THRESHOLD
        return False

    @property
    def improved(self) -> bool:
        if self.better == LOWER:
            return self.relative < -REGRESSION_THRESHOLD
        if self.better == HIGHER:
            return self.relative > REGRESSION_THRESHOLD
        return False

    def line(self) -> str:
        sign = "+" if self.relative >= 0 else ""
        verdict = ("REGRESSION" if self.regressed
                   else "improvement" if self.improved else "ok")
        return (f"{self.experiment}.{self.metric}: "
                f"{self.old!r} -> {self.new!r} "
                f"({sign}{self.relative * 100:.1f}%, {verdict})")


def compare_payloads(old: Dict[str, Any],
                     new: Dict[str, Any]) -> List[Delta]:
    """Directional metric deltas between two artifact payloads."""
    deltas: List[Delta] = []
    old_experiments = old.get("experiments", {})
    for key, experiment in sorted(new.get("experiments", {}).items()):
        previous = old_experiments.get(key)
        if previous is None:
            continue
        old_metrics = previous.get("metrics", {})
        for name, metric in sorted(experiment.get("metrics", {}).items()):
            before = old_metrics.get(name)
            if before is None or metric["better"] == INFO:
                continue
            deltas.append(Delta(
                experiment=key, metric=name,
                old=before["value"], new=metric["value"],
                better=metric["better"], unit=metric.get("unit", ""),
            ))
    return deltas


@dataclass
class BenchOutcome:
    """What one ``repro.bench`` invocation did with the artifact history."""

    run: BenchRun
    directory: Path
    written: Optional[Path]
    compared_against: Optional[Path]
    deltas: List[Delta]
    unchanged: bool
    #: Unchanged only up to volatile (wall-clock) jitter within the gate.
    within_noise: bool = False

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regressed]


def _volatile_only_drift(old: Dict[str, Any], new: Dict[str, Any]) -> bool:
    """True when *new* differs from *old* only in volatile metric values,
    every one of them inside :data:`REGRESSION_THRESHOLD`.

    Any structural difference — a key added or removed, a deterministic
    value moved, a unit or direction changed — disqualifies, as does a
    volatile move past the gate: those must land in the history.
    """
    if {k: v for k, v in old.items() if k != "experiments"} != \
            {k: v for k, v in new.items() if k != "experiments"}:
        return False
    old_experiments = old.get("experiments", {})
    new_experiments = new.get("experiments", {})
    if old_experiments.keys() != new_experiments.keys():
        return False
    drifted = False
    for key, experiment in new_experiments.items():
        previous = old_experiments[key]
        if {k: v for k, v in previous.items() if k != "metrics"} != \
                {k: v for k, v in experiment.items() if k != "metrics"}:
            return False
        old_metrics = previous.get("metrics", {})
        new_metrics = experiment.get("metrics", {})
        if old_metrics.keys() != new_metrics.keys():
            return False
        for name, metric in new_metrics.items():
            before = old_metrics[name]
            if before == metric:
                continue
            if not (before.get("volatile") and metric.get("volatile")):
                return False
            if {k: v for k, v in before.items() if k != "value"} != \
                    {k: v for k, v in metric.items() if k != "value"}:
                return False
            if before["value"] == 0:
                return False
            relative = (metric["value"] - before["value"]) / abs(before["value"])
            if abs(relative) > REGRESSION_THRESHOLD:
                return False
            drifted = True
    return drifted


def publish(run: BenchRun, directory: Path) -> BenchOutcome:
    """Write the run's artifact (if changed) and diff it against history."""
    artifacts = discover_artifacts(directory)
    payload_bytes = run.canonical_bytes()
    if artifacts:
        newest_number, newest_path = artifacts[-1]
        if newest_path.read_bytes() == payload_bytes:
            return BenchOutcome(
                run=run, directory=directory, written=None,
                compared_against=newest_path, deltas=[], unchanged=True,
            )
        old_payload = json.loads(newest_path.read_text())
        if _volatile_only_drift(old_payload, run.payload):
            return BenchOutcome(
                run=run, directory=directory, written=None,
                compared_against=newest_path, deltas=[], unchanged=True,
                within_noise=True,
            )
        target = directory / f"BENCH_{newest_number + 1}.json"
        target.write_bytes(payload_bytes)
        deltas = compare_payloads(old_payload, run.payload)
        return BenchOutcome(
            run=run, directory=directory, written=target,
            compared_against=newest_path, deltas=deltas, unchanged=False,
        )
    target = directory / "BENCH_1.json"
    target.write_bytes(payload_bytes)
    return BenchOutcome(
        run=run, directory=directory, written=target,
        compared_against=None, deltas=[], unchanged=False,
    )
