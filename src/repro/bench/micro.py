"""Simulator-core micro-benchmarks: the E18/SIM self-benchmark.

Three hot paths that every simulated operation crosses, measured raw:

* **engine events/sec** — ten ticker processes spinning on
  ``sim.timeout(0.0)``, the dominant zero-delay case the engine's
  immediate lane exists for; counts one event per timeout plus the
  bootstrap/completion events per process.
* **RPC round-trips/sec** — an ``echo`` handler behind an
  :class:`~repro.transport.RpcServer` on a UDP loopback pair, driven by
  one client issuing sequential :meth:`~repro.transport.RpcClient.call`
  round trips (engine + transport + telemetry all in the loop).
* **histogram observes/sec** — ``Histogram.observe`` in a tight loop:
  the per-sample cost every simulated operation pays. The deferred
  sum/bin accounting is forced and verified immediately after the timed
  region — it is a once-per-snapshot cost (measured equivalent to the
  old eager accounting), not a per-observe one, so it is exercised for
  correctness but kept out of the hot-path number.

Unlike every other number in the continuous-benchmark payload, these are
**wall-clock** measurements: they exist to watch the simulator's own
speed, which simulated time cannot see by construction. They are tagged
``volatile`` in the artifact, which the harness treats specially — run-
to-run jitter within the >20% regression gate does not write a new
``BENCH_<n>.json``, but a real slowdown past the gate does, and fails
``--check`` like any other tracked regression. Each measurement takes
the best of ``repeats`` runs with the garbage collector parked
(collected before, disabled during the timed region) to damp scheduler
and GC noise — in the full-suite run, eighteen prior experiments' worth
of garbage would otherwise collect inside the timed window.

The deterministic companion counts (events run, round trips completed,
samples observed) are plain ``info`` metrics and stay byte-identical per
seed like the rest of the payload.
"""

from __future__ import annotations

import gc
import random
from dataclasses import dataclass
from time import perf_counter

from repro.hw.net import Network
from repro.sim import Simulator
from repro.telemetry import MetricScope
from repro.transport import RpcClient, RpcServer, UdpSocket

#: Ticker processes spinning on ``timeout(0.0)`` in the engine benchmark.
ENGINE_PROCESSES = 10

#: Zero-delay timeouts each ticker yields.
ENGINE_TICKS = 20_000

#: Sequential echo round trips through the UDP loopback pair.
RPC_CALLS = 2_000

#: Samples appended (and then materialized) in the histogram benchmark.
OBSERVE_SAMPLES = 200_000

#: Timing runs per benchmark; the best (highest throughput) is reported.
DEFAULT_REPEATS = 5


@dataclass(frozen=True)
class MicroReport:
    """Best-of-N throughputs plus their deterministic workload counts."""

    events_per_sec: float
    rpc_roundtrips_per_sec: float
    observes_per_sec: float
    events_run: int
    rpc_roundtrips: int
    observes: int
    repeats: int


def _best_rate(work: int, times) -> float:
    """Highest observed throughput, rounded to a whole unit/sec."""
    return float(round(work / min(times)))


def _timed(work) -> float:
    """Wall-clock one run with the GC parked.

    Collecting first and disabling during the timed region keeps garbage
    accumulated by *earlier* workloads (eighteen experiments' worth, in
    the full-suite run) from collecting inside the window and sinking
    the best-of-N.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = perf_counter()
        work()
        return perf_counter() - started
    finally:
        if was_enabled:
            gc.enable()


def _bench_engine(repeats: int) -> float:
    """Raw events/sec through the bare engine: zero-delay ticker swarm."""
    times = []
    for __ in range(repeats):
        sim = Simulator()

        def ticker():
            timeout = sim.timeout
            for __ in range(ENGINE_TICKS):
                yield timeout(0.0)

        for __ in range(ENGINE_PROCESSES):
            sim.process(ticker())
        times.append(_timed(sim.run))
    return _best_rate(_engine_events(), times)


def _engine_events() -> int:
    # One event per tick, plus each process's bootstrap and completion.
    return ENGINE_PROCESSES * (ENGINE_TICKS + 2)


def _bench_rpc(repeats: int) -> float:
    """Echo round trips/sec over a UDP loopback pair (full RPC stack)."""
    times = []
    for __ in range(repeats):
        sim = Simulator()
        net = Network(sim)
        server = RpcServer(sim, UdpSocket(sim, net.endpoint("server")))
        server.register("echo", lambda value: value)
        client = RpcClient(sim, UdpSocket(sim, net.endpoint("client")))

        def driver():
            for i in range(RPC_CALLS):
                yield from client.call("server", "echo", i)

        times.append(_timed(lambda: sim.run_process(driver())))
    return _best_rate(RPC_CALLS, times)


def _bench_observes(seed: int, repeats: int) -> float:
    """Histogram appends/sec: the per-sample hot-path cost."""
    rng = random.Random(f"bench.micro/{seed}")
    samples = [rng.random() for __ in range(OBSERVE_SAMPLES)]
    times = []
    for run in range(repeats):
        scope = MetricScope.standalone(f"bench.micro.{run}")
        histogram = scope.histogram("observe_cost")
        observe = histogram.observe

        def append_all():
            for value in samples:
                observe(value)

        times.append(_timed(append_all))
        # Force + verify the deferred sum/bin accounting (snapshot-time
        # cost, deliberately outside the timed region).
        if histogram.sum < 0 or not histogram.bucket_counts():
            raise AssertionError("histogram lost samples")
    return _best_rate(OBSERVE_SAMPLES, times)


def run_micro(seed: int = 0, repeats: int = DEFAULT_REPEATS) -> MicroReport:
    """Run all three micro-benchmarks, best-of-``repeats`` each."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    return MicroReport(
        events_per_sec=_bench_engine(repeats),
        rpc_roundtrips_per_sec=_bench_rpc(repeats),
        observes_per_sec=_bench_observes(seed, repeats),
        events_run=_engine_events(),
        rpc_roundtrips=RPC_CALLS,
        observes=OBSERVE_SAMPLES,
        repeats=repeats,
    )
