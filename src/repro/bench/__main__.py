"""Continuous-benchmark CLI: ``python -m repro.bench``.

Usage::

    python -m repro.bench                   # run all, publish BENCH_<n>.json
    python -m repro.bench --check           # nonzero exit on regression (CI)
    python -m repro.bench --seed 42         # alternate seed for seeded runs
    python -m repro.bench --output-dir out  # artifact directory (default: .)
    python -m repro.bench --list            # registered experiments
    python -m repro.bench e12 e13           # subset (not published)
    python -m repro.bench e20               # traffic plane / autoscaling
                                            # (report: `make autoscale`)
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional

from repro.bench import SPECS, BenchOutcome, publish, run_suite


def _report(outcome: BenchOutcome) -> str:
    run = outcome.run
    lines = ["repro continuous benchmark", "=" * 26]
    total_wall = sum(run.wall_clock.values())
    for key, experiment in sorted(run.payload["experiments"].items()):
        wall = run.wall_clock.get(key, 0.0)
        tracked = sum(
            1 for m in experiment["metrics"].values() if m["better"] != "info"
        )
        lines.append(
            f"  {key:>9}  {experiment['title']:<42} "
            f"{tracked:2d} tracked metrics  {wall * 1e3:7.1f} ms wall"
        )
    lines.append(f"  {'total':>9}  {'':<42} "
                 f"{'':>18}  {total_wall * 1e3:7.1f} ms wall")
    lines.append("")
    if outcome.unchanged:
        if outcome.within_noise:
            lines.append(
                f"artifact unchanged: differs from "
                f"{outcome.compared_against.name} only in volatile "
                f"wall-clock metrics, all within the 20% gate; "
                f"nothing written"
            )
        else:
            lines.append(
                f"artifact unchanged: payload is byte-identical to "
                f"{outcome.compared_against.name}; nothing written"
            )
        return "\n".join(lines)
    lines.append(f"wrote {outcome.written}")
    if outcome.compared_against is None:
        lines.append("no previous artifact; baseline established")
        return "\n".join(lines)
    lines.append(f"compared against {outcome.compared_against.name}:")
    moved = [d for d in outcome.deltas if d.regressed or d.improved]
    steady = len(outcome.deltas) - len(moved)
    for delta in moved:
        lines.append(f"  {delta.line()}")
    lines.append(f"  ({steady} tracked metrics within "
                 "+/-20%, not shown)")
    if outcome.regressions:
        lines.append(f"REGRESSIONS: {len(outcome.regressions)}")
    else:
        lines.append("no regressions")
    return "\n".join(lines)


def main(argv) -> int:
    args = list(argv[1:])
    if "--list" in args:
        for spec in SPECS:
            seeded = "seeded" if spec.seeded else "fixed"
            print(f"{spec.key:>9}  [{seeded:>6}]  {spec.title}")
        return 0
    check = "--check" in args
    if check:
        args.remove("--check")
    seed: Optional[int] = None
    if "--seed" in args:
        at = args.index("--seed")
        try:
            seed = int(args[at + 1])
        except (IndexError, ValueError):
            print("--seed requires an integer argument", file=sys.stderr)
            return 2
        del args[at:at + 2]
    directory = Path(".")
    if "--output-dir" in args:
        at = args.index("--output-dir")
        try:
            directory = Path(args[at + 1])
        except IndexError:
            print("--output-dir requires a path argument", file=sys.stderr)
            return 2
        del args[at:at + 2]
    keys: Optional[List[str]] = [a.lower() for a in args] or None
    if keys:
        known = {spec.key for spec in SPECS}
        unknown = [key for key in keys if key not in known]
        if unknown:
            print(f"unknown experiments: {', '.join(unknown)}",
                  file=sys.stderr)
            print("use --list to see the available ids", file=sys.stderr)
            return 2
        # Subset runs are for iterating locally; they never enter history.
        run = run_suite(seed=seed, keys=keys)
        print(f"subset run ({', '.join(keys)}); artifact not published")
        for key, experiment in sorted(run.payload["experiments"].items()):
            print(f"\n{key}: {experiment['title']}")
            for name, metric in experiment["metrics"].items():
                print(f"  {name:<34} {metric['value']!r:>24} "
                      f"{metric['unit']} [{metric['better']}]")
        return 0
    directory.mkdir(parents=True, exist_ok=True)
    outcome = publish(run_suite(seed=seed), directory)
    print(_report(outcome))
    if check and outcome.regressions:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
