"""Clock sources for the fault injector.

Faults are scheduled strictly against *simulated* time — never the wall
clock — so every fault storm is reproducible. Any object exposing a ``now``
attribute works as a clock; :class:`repro.sim.Simulator` already does.
:class:`ManualClock` exists for unit tests that want to step time by hand.
"""

from __future__ import annotations


class ManualClock:
    """A hand-advanced clock for testing fault plans without a simulator."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def advance(self, delta: float) -> float:
        if delta < 0:
            raise ValueError("clock cannot run backwards")
        self.now += delta
        return self.now


class SimClock:
    """Adapter exposing a simulator's current time as a read-only clock."""

    def __init__(self, sim) -> None:
        self._sim = sim

    @property
    def now(self) -> float:
        return self._sim.now
