"""Backwards-compatibility shim: the clocks moved to :mod:`repro.sim.clock`.

Faults are scheduled strictly against *simulated* time — never the wall
clock — so every fault storm is reproducible. The clock classes now live
beside the simulator they adapt; import them from ``repro.sim`` (or keep
importing from here, which re-exports them unchanged).
"""

from repro.sim.clock import ManualClock, SimClock

__all__ = ["ManualClock", "SimClock"]
