"""Deterministic fault injection for every substrate (robustness layer).

The paper claims a CPU-free DPU can "boot, recover, and serve without a
host" (§2.1); this package turns that claim into a testable property. A
:class:`FaultPlan` names faults against component ids on the simulated
clock; a :class:`FaultInjector` evaluates it wherever hardware models
consult it (links, flash dies, NVMe controllers, PCIe links, fabric slots,
whole DPUs); the recovery machinery — RPC backoff/deadlines, replicated
cluster failover, tiering degradation, ICAP scrubbing — rides through what
the plan throws at it. E13 (``repro.eval.chaos``) measures the result.
"""

from repro.faults.clock import ManualClock, SimClock
from repro.faults.injector import FaultInjector, FaultRecord
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "FaultRecord",
    "ManualClock",
    "SimClock",
]
