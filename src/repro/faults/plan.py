"""Declarative, seedable fault plans.

A :class:`FaultPlan` is a list of named :class:`FaultSpec` entries plus one
RNG seed. It is pure data: nothing fires until a
:class:`repro.faults.injector.FaultInjector` evaluates the plan against a
clock. The same (plan, seed, workload) triple always produces the same
fault schedule — the determinism the gem5 reproducibility argument asks of
failure experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError


class FaultKind(enum.Enum):
    """What kind of misbehaviour a spec injects, by substrate."""

    # -- network links
    FRAME_DROP = "frame-drop"
    FRAME_CORRUPT = "frame-corrupt"
    LINK_DOWN = "link-down"
    # -- NVMe / flash
    READ_ERROR = "read-error"
    DIE_STUCK = "die-stuck"
    COMMAND_TIMEOUT = "command-timeout"
    # -- PCIe
    COMPLETION_TIMEOUT = "completion-timeout"
    # -- FPGA fabric
    SEU = "seu"
    # -- whole devices / backends
    POWER_LOSS = "power-loss"
    NODE_DOWN = "node-down"
    BACKEND_DOWN = "backend-down"
    # -- WAN / inter-region
    WAN_PARTITION = "wan-partition"


@dataclass(frozen=True)
class FaultSpec:
    """One named fault against one component id.

    Exactly one timing mode applies:

    * ``at`` — fire-once: fires on the first consult at or after ``at``;
    * ``probability`` — fires per consult with probability p (optionally
      only inside ``window`` and at most ``max_fires`` times);
    * ``window`` alone — deterministically *active* during ``[start, end)``
      (link flaps, node outages, backend brownouts).
    """

    name: str
    component: str
    kind: FaultKind
    at: Optional[float] = None
    probability: Optional[float] = None
    window: Optional[Tuple[float, float]] = None
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name or not self.component:
            raise ConfigurationError("fault specs need a name and a component")
        if self.at is not None and (
            self.probability is not None or self.window is not None
        ):
            raise ConfigurationError(
                f"{self.name}: fire-once excludes probability/window"
            )
        if self.at is None and self.probability is None and self.window is None:
            raise ConfigurationError(
                f"{self.name}: need one of at=, probability=, window="
            )
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise ConfigurationError(
                f"{self.name}: probability must be in (0, 1]"
            )
        if self.window is not None and self.window[1] <= self.window[0]:
            raise ConfigurationError(f"{self.name}: empty fault window")
        if self.max_fires is not None and self.max_fires < 1:
            raise ConfigurationError(f"{self.name}: max_fires must be >= 1")

    @property
    def is_windowed(self) -> bool:
        return self.window is not None and self.probability is None


class FaultPlan:
    """A seed plus an ordered list of fault specs.

    Convenience constructors mirror the three timing modes::

        plan = FaultPlan(seed=7)
        plan.once("seu-0", "fabric.slot0", FaultKind.SEU, at=5e-3)
        plan.probabilistic("lossy", "uplink", FaultKind.FRAME_DROP, 0.01)
        plan.windowed("outage", "kv-dpu-1", FaultKind.NODE_DOWN, 0.1, 0.4)
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.specs: List[FaultSpec] = []

    # -- construction --------------------------------------------------------
    def add(self, spec: FaultSpec) -> FaultSpec:
        if any(existing.name == spec.name for existing in self.specs):
            raise ConfigurationError(f"duplicate fault name {spec.name!r}")
        self.specs.append(spec)
        return spec

    def once(self, name: str, component: str, kind: FaultKind,
             at: float) -> FaultSpec:
        return self.add(FaultSpec(name, component, kind, at=at))

    def probabilistic(
        self,
        name: str,
        component: str,
        kind: FaultKind,
        probability: float,
        window: Optional[Tuple[float, float]] = None,
        max_fires: Optional[int] = None,
    ) -> FaultSpec:
        return self.add(
            FaultSpec(name, component, kind, probability=probability,
                      window=window, max_fires=max_fires)
        )

    def windowed(self, name: str, component: str, kind: FaultKind,
                 start: float, end: float) -> FaultSpec:
        return self.add(FaultSpec(name, component, kind, window=(start, end)))

    def wan_partition(self, name: str, src: str, dst: str,
                      start: float, end: float) -> FaultSpec:
        """Partition the directional WAN link ``src -> dst`` over a window.

        The window's rising edge is the partition, its falling edge the
        heal. The component id matches :func:`repro.georep.wan_component`
        (``wan.{src}->{dst}``), so one spec addresses exactly one
        direction — model an asymmetric partition by adding only one of
        the pair, a symmetric one by adding both.
        """
        return self.add(FaultSpec(
            name, f"wan.{src}->{dst}", FaultKind.WAN_PARTITION,
            window=(start, end),
        ))

    def merge(self, other: "FaultPlan") -> "FaultPlan":
        """Compose two plans into a new one with a stable spec order.

        The merged plan keeps ``self.seed`` (the injector keys each
        spec's RNG on ``{seed}/{name}``, so layering more specs never
        perturbs the draws of existing ones) and orders the union of
        specs by name. Name-sorting makes the composition order
        independent of which operand contributed which spec — merging
        ``a.merge(b)`` and ``b.merge(a)`` yields the same schedule up to
        the seed. Duplicate spec names are configuration errors.
        """
        merged = FaultPlan(seed=self.seed)
        for spec in sorted(
            list(self.specs) + list(other.specs), key=lambda s: s.name
        ):
            merged.add(spec)
        return merged

    # -- introspection -------------------------------------------------------
    def specs_for(self, component: str, kind: FaultKind) -> List[FaultSpec]:
        return [
            spec for spec in self.specs
            if spec.component == component and spec.kind is kind
        ]

    def describe(self) -> str:
        """Canonical one-line-per-spec rendering (stable across runs)."""
        lines = [f"seed={self.seed}"]
        for spec in self.specs:
            timing = (
                f"at={spec.at!r}" if spec.at is not None
                else f"p={spec.probability!r} window={spec.window!r} "
                     f"max={spec.max_fires!r}" if spec.probability is not None
                else f"window={spec.window!r}"
            )
            lines.append(
                f"{spec.name} {spec.component} {spec.kind.value} {timing}"
            )
        return "\n".join(lines)
