"""The runtime half of the fault subsystem.

Substrates never schedule faults themselves; they *consult* the injector at
the points where real hardware would fail — a link about to deliver a
frame, a flash die about to return a page, an ICAP scrubber polling for
SEUs — and the injector answers against the plan and the simulated clock.

Determinism: every probabilistic spec draws from its own RNG seeded with
``(plan.seed, spec.name)``, so adding or reordering unrelated specs never
perturbs another spec's draws, and the fired-fault log is byte-identical
across runs of the same (plan, workload).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec


@dataclass(frozen=True)
class FaultRecord:
    """One fired (or first-observed-active) fault, for the schedule log."""

    time: float
    name: str
    component: str
    kind: FaultKind

    def line(self) -> str:
        return f"{self.time:.9f} {self.name} {self.component} {self.kind.value}"


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against a clock, recording every fire."""

    def __init__(self, clock, plan: FaultPlan):
        self.clock = clock
        self._recorder = getattr(clock, "recorder", None)
        self.plan = plan
        self.log: List[FaultRecord] = []
        self.injected: Dict[FaultKind, int] = {}
        self._fires: Dict[str, int] = {spec.name: 0 for spec in plan.specs}
        self._rngs: Dict[str, random.Random] = {
            spec.name: random.Random(f"{plan.seed}/{spec.name}")
            for spec in plan.specs
        }

    # -- internals -----------------------------------------------------------
    def _record(self, spec: FaultSpec) -> None:
        self._fires[spec.name] += 1
        self.injected[spec.kind] = self.injected.get(spec.kind, 0) + 1
        record = FaultRecord(
            self.clock.now, spec.name, spec.component, spec.kind
        )
        self.log.append(record)
        if self._recorder is not None:
            self._recorder.record("fault", record.line())

    def _exhausted(self, spec: FaultSpec) -> bool:
        if spec.at is not None:
            return self._fires[spec.name] > 0
        if spec.max_fires is not None and self._fires[spec.name] >= spec.max_fires:
            return True
        if spec.window is not None:
            return self.clock.now >= spec.window[1]
        return False

    # -- the consult API -----------------------------------------------------
    def fires(self, component: str, kind: FaultKind) -> bool:
        """Does a fault of ``kind`` fire on ``component`` right now?

        Point-in-time faults only (fire-once and probabilistic specs);
        windowed availability faults are queried with :meth:`active`.
        """
        now = self.clock.now
        fired = False
        for spec in self.plan.specs_for(component, kind):
            if self._exhausted(spec):
                continue
            if spec.at is not None:
                if now >= spec.at:
                    self._record(spec)
                    fired = True
            elif spec.probability is not None:
                if spec.window is not None and not (
                    spec.window[0] <= now < spec.window[1]
                ):
                    continue
                if self._rngs[spec.name].random() < spec.probability:
                    self._record(spec)
                    fired = True
        return fired

    def active(self, component: str, kind: FaultKind) -> bool:
        """Is a windowed fault of ``kind`` currently holding ``component``
        down? The first consult inside each window logs one record (the
        falling edge), keeping the schedule log deterministic and compact."""
        now = self.clock.now
        holding = False
        for spec in self.plan.specs_for(component, kind):
            if spec.is_windowed and spec.window[0] <= now < spec.window[1]:
                if self._fires[spec.name] == 0:
                    self._record(spec)
                    if self._recorder is not None:
                        # A fault window just opened: capture the state of
                        # the system as it enters the incident.
                        self._recorder.dump(f"fault-window:{spec.name}")
                holding = True
        return holding

    def pending(self, component: Optional[str] = None,
                kind: Optional[FaultKind] = None) -> bool:
        """Could any matching spec still fire (or re-enter a window)?

        Monitor processes poll this to know when to stop, so a finished
        plan never keeps the simulation heap alive forever. Unbounded
        probabilistic specs (no window, no ``max_fires``) are pending
        forever — bound them when a monitor watches them.
        """
        for spec in self.plan.specs:
            if component is not None and spec.component != component:
                continue
            if kind is not None and spec.kind is not kind:
                continue
            if not self._exhausted(spec):
                return True
        return False

    # -- the schedule log ----------------------------------------------------
    def fired(self, name: str) -> int:
        """How many times the named spec has fired so far."""
        return self._fires[name]

    def schedule_bytes(self) -> bytes:
        """The fired-fault schedule in canonical bytes.

        Two runs of the same plan and workload must produce identical
        output — the reproducibility contract the chaos experiment (E13)
        asserts.
        """
        return "\n".join(record.line() for record in self.log).encode()
