"""A Tiara-style stateful L4 load balancer on the DPU (paper §2.4).

"load-balancers ... require large temporary data storage (e.g., Tiara
offloads load-balancing state from FPGAs to x86 servers)" — Hyperion keeps
the hot connection table in FPGA DRAM and overflows cold entries to its own
attached SSDs instead of to another server.

Two policies are compared (the E4 ablation):

* ``overflow`` — evicted entries move to an NVMe-resident segment; later
  packets of those flows pay a flash read but keep their backend;
* ``drop`` — evicted entries are lost (the DRAM-only baseline); returning
  flows get re-hashed, and flows whose backend assignment changed count as
  *broken connections*.
"""

from __future__ import annotations

import random
import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List

from repro.dpu.hyperion import HyperionDpu
from repro.memory.segments import PlacementHint
from repro.sim import Simulator

_ENTRY = struct.Struct("<QI")  # flow id, backend


@dataclass(frozen=True)
class LbPacket:
    """One packet of the load-balancer trace, keyed by flow id."""

    flow_id: int
    size: int = 1500


def generate_connections(
    packet_count: int,
    flow_count: int,
    hot_fraction: float = 0.1,
    hot_probability: float = 0.8,
    seed: int = 11,
) -> List[LbPacket]:
    """A skewed trace: a small hot set gets most packets (elephant flows)."""
    rng = random.Random(seed)
    hot_flows = max(1, int(flow_count * hot_fraction))
    packets = []
    for _ in range(packet_count):
        if rng.random() < hot_probability:
            flow = rng.randrange(hot_flows)
        else:
            flow = hot_flows + rng.randrange(max(1, flow_count - hot_flows))
        packets.append(LbPacket(flow_id=flow))
    return packets


class LoadBalancer:
    """Per-packet backend selection with a bounded DRAM table."""

    def __init__(
        self,
        sim: Simulator,
        dpu: HyperionDpu,
        backend_count: int = 8,
        dram_table_entries: int = 128,
        policy: str = "overflow",
    ):
        if policy not in ("overflow", "drop"):
            raise ValueError(f"unknown policy {policy!r}")
        dpu.require_booted()
        self.sim = sim
        self.dpu = dpu
        self.backend_count = backend_count
        self.dram_table_entries = dram_table_entries
        self.policy = policy
        #: LRU hot table: flow -> backend (conceptually in FPGA DRAM)
        self._hot: "OrderedDict[int, int]" = OrderedDict()
        #: cold entries: flow -> (segment offset); data lives on NVMe
        self._cold_index: Dict[int, int] = {}
        self._cold_segment = dpu.store.allocate(
            1 << 20, hint=PlacementHint.COLD
        )
        self._cold_cursor = 0
        self._rng = random.Random(13)
        # statistics
        self.packets = 0
        self.hot_hits = 0
        self.cold_hits = 0
        self.inserts = 0
        self.broken_connections = 0
        self._ever_assigned: Dict[int, int] = {}

    def _assign_backend(self, flow_id: int) -> int:
        # Load-aware assignment: the backend chosen depends on conditions at
        # arrival time (modeled as a random draw), so a flow whose state is
        # dropped and re-inserted may land on a *different* backend — the
        # broken connection Tiara's state offload exists to prevent.
        return self._rng.randrange(self.backend_count)

    def _evict_one(self):
        victim_flow, victim_backend = self._hot.popitem(last=False)
        if self.policy == "overflow":
            record = _ENTRY.pack(victim_flow, victim_backend)
            offset = self._cold_cursor
            self._cold_cursor += _ENTRY.size
            yield from self.dpu.store.timed_write(
                self._cold_segment.oid, record, offset=offset
            )
            self._cold_index[victim_flow] = offset
        # policy "drop": the state is simply gone.

    def _fetch_cold(self, flow_id: int):
        offset = self._cold_index.pop(flow_id)
        raw = yield from self.dpu.store.timed_read(
            self._cold_segment.oid, _ENTRY.size, offset=offset
        )
        __, backend = _ENTRY.unpack(raw)
        return backend

    def handle_packet(self, packet: LbPacket):
        """Process: route one packet; returns the chosen backend."""
        self.packets += 1
        flow = packet.flow_id
        # DRAM hit: one fast-path lookup.
        if flow in self._hot:
            self._hot.move_to_end(flow)
            self.hot_hits += 1
            yield self.sim.timeout(self.dpu.fabric.dram.access_latency)
            return self._hot[flow]
        # Cold hit: fetch from flash, promote back to DRAM.
        if self.policy == "overflow" and flow in self._cold_index:
            backend = yield from self._fetch_cold(flow)
            self.cold_hits += 1
        else:
            backend = self._assign_backend(flow)
            self.inserts += 1
            previous = self._ever_assigned.get(flow)
            if previous is not None and previous != backend:
                self.broken_connections += 1
        self._ever_assigned[flow] = backend
        self._hot[flow] = backend
        if len(self._hot) > self.dram_table_entries:
            yield from self._evict_one()
        return backend

    def state_bytes_on_flash(self) -> int:
        return len(self._cold_index) * _ENTRY.size
