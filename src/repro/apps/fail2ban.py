"""fail2ban on a CPU-free DPU (paper §2.4, first workload class).

"High data volume network middleware applications such as fail2Ban ...
have traffic-flow proportional states that either need to be persisted (in
case of fail2Ban that needs to log network traffic data persistently) ...
These network middleware applications can run in a pure, stand-alone mode
on Hyperion with attached SSDs."

The same verified eBPF program runs in two places:

* **DPU**: packets flow NIC -> compiled hardware pipeline -> NVMe log,
  with fixed pipeline latency and no OS costs;
* **baseline**: packets flow NIC -> interrupt -> syscall -> interpreter
  (with jitter) -> syscall -> block layer -> NVMe.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import List

from repro.baseline.datapath import CpuCentricDatapath
from repro.dpu.hyperion import HyperionDpu
from repro.ebpf.builder import ProgramBuilder
from repro.ebpf.helpers import HELPER_MAP_LOOKUP, HELPER_MAP_UPDATE
from repro.ebpf.isa import Program
from repro.ebpf.maps import HashMap
from repro.ebpf.vm import BpfVm
from repro.hdl.engine import HardwarePipeline, compile_program
from repro.hw.nvme.commands import NvmeCommand, NvmeOpcode
from repro.sim import Simulator

#: Verdicts returned by the filter program.
VERDICT_BAN = 0
VERDICT_PASS = 1

BAN_MAP_FD = 1


@dataclass(frozen=True)
class PacketRecord:
    """One packet of the synthetic trace: context bytes + ground truth."""

    src_ip: int
    auth_failed: bool
    size: int

    def context(self) -> bytes:
        return struct.pack("<IB", self.src_ip, 1 if self.auth_failed else 0)


def build_fail2ban_program(threshold: int = 3) -> Program:
    """The filter: count auth failures per source, ban above threshold.

    Context layout: ``src_ip u32 | auth_failed u8``. Map fd 1 is a hash of
    ``src_ip (4B, padded key) -> failure count (8B)``.
    """
    b = ProgramBuilder("fail2ban")
    b.load(4, "r6", "r1", 0)  # r6 = src_ip
    b.load(1, "r7", "r1", 4)  # r7 = auth_failed
    b.store(4, "r10", -8, "r6")  # key at [r10-8] (4B used, 4B padding)
    b.store(4, "r10", -4, 0)
    b.mov("r1", BAN_MAP_FD)
    b.mov("r2", "r10")
    b.add("r2", -8)
    b.call(HELPER_MAP_LOOKUP)
    b.jne("r0", 0, "found")
    # First sight of this source: insert its current failure count.
    b.store(8, "r10", -16, "r7")
    b.mov("r1", BAN_MAP_FD)
    b.mov("r2", "r10")
    b.add("r2", -8)
    b.mov("r3", "r10")
    b.add("r3", -16)
    b.mov("r4", 0)
    b.call(HELPER_MAP_UPDATE)
    b.mov("r0", VERDICT_PASS)
    b.exit()
    b.label("found")
    b.load(8, "r8", "r0", 0)  # current count
    b.add("r8", "r7")
    b.store(8, "r0", 0, "r8")  # write back through the map pointer
    b.jgt("r8", threshold, "ban")
    b.mov("r0", VERDICT_PASS)
    b.exit()
    b.label("ban")
    b.mov("r0", VERDICT_BAN)
    b.exit()
    return b.build()


def generate_packet_trace(
    packet_count: int,
    attacker_fraction: float = 0.1,
    attack_intensity: float = 0.9,
    source_count: int = 100,
    packet_size: int = 512,
    seed: int = 7,
) -> List[PacketRecord]:
    """A mixed trace: most sources are benign, attackers fail auth often."""
    rng = random.Random(seed)
    attackers = {
        ip for ip in range(source_count) if rng.random() < attacker_fraction
    }
    trace = []
    for _ in range(packet_count):
        src = rng.randrange(source_count)
        if src in attackers:
            failed = rng.random() < attack_intensity
        else:
            failed = rng.random() < 0.01
        trace.append(PacketRecord(src_ip=src, auth_failed=failed, size=packet_size))
    return trace


class Fail2BanDpu:
    """The standalone DPU deployment: inline pipeline + NVMe packet log."""

    def __init__(self, sim: Simulator, dpu: HyperionDpu, threshold: int = 3):
        dpu.require_booted()
        self.sim = sim
        self.dpu = dpu
        self.ban_map = HashMap(key_size=8, value_size=8, max_entries=65536)
        compiled = compile_program(build_fail2ban_program(threshold))
        self.pipeline = HardwarePipeline(
            sim, compiled, maps={BAN_MAP_FD: self.ban_map}
        )
        # Packet log on SSD 1 (SSD 0 carries the segment store). Records
        # buffer in on-fabric BRAM and flush to flash a block at a time.
        self._log_ssd = dpu.ssds[1 % len(dpu.ssds)]
        self._log_qp = self._log_ssd.create_queue_pair()
        self._log_lba = 0
        self._log_buffer = bytearray()
        self.banned_packets = 0
        self.passed_packets = 0

    def _append_log(self, record: bytes):
        self._log_buffer.extend(record)
        if len(self._log_buffer) >= 4096:
            block, self._log_buffer = self._log_buffer[:4096], self._log_buffer[4096:]
            completion = yield self._log_qp.submit(
                NvmeCommand(NvmeOpcode.WRITE, lba=self._log_lba, data=bytes(block))
            )
            assert completion.ok
            self._log_lba += 1

    def flush_log(self):
        """Process: force the partial log block to flash."""
        if self._log_buffer:
            completion = yield self._log_qp.submit(
                NvmeCommand(
                    NvmeOpcode.WRITE, lba=self._log_lba, data=bytes(self._log_buffer)
                )
            )
            assert completion.ok
            self._log_lba += 1
            self._log_buffer = bytearray()

    def process_packet(self, packet: PacketRecord):
        """Process: NIC -> pipeline -> (persist log record) -> verdict."""
        result = yield from self.pipeline.execute(packet.context())
        yield from self._append_log(packet.context().ljust(16, b"\x00"))
        if result.return_value == VERDICT_BAN:
            self.banned_packets += 1
        else:
            self.passed_packets += 1
        return result.return_value

    def banned_sources(self) -> List[int]:
        sources = []
        for key, value in self.ban_map.items():
            (count,) = struct.unpack("<Q", value)
            if count > 0:
                sources.append(struct.unpack("<I", key[:4])[0])
        return sources


class Fail2BanBaseline:
    """The same filter on a conventional server's datapath."""

    def __init__(self, sim: Simulator, datapath: CpuCentricDatapath,
                 threshold: int = 3):
        self.sim = sim
        self.datapath = datapath
        self.ban_map = HashMap(key_size=8, value_size=8, max_entries=65536)
        self.vm = BpfVm(build_fail2ban_program(threshold),
                        maps={BAN_MAP_FD: self.ban_map})
        self.banned_packets = 0
        self.passed_packets = 0

    def process_packet(self, packet: PacketRecord):
        """Process: the full CPU-centric path with persistence."""
        verdict = yield from self.datapath.process_packet(
            self.vm, packet.context().ljust(16, b"\x00"), persist=True
        )
        if verdict == VERDICT_BAN:
            self.banned_packets += 1
        else:
            self.passed_packets += 1
        return verdict
