"""End-to-end columnar analytics (paper §2.3, experiment E9).

The query: filter + aggregate over a Parquet file stored on a HyperExt file
system on NVMe.

* **DPU path**: the annotation-generated walker resolves the file (timed
  NVMe block reads), the footer is read from the file tail, and only the
  blocks containing the *projected* column chunks (of row groups surviving
  min/max pushdown) move off flash; conversion and the scan kernel run at
  pipeline rates — no host or client CPU.
* **CPU path**: the host reads the whole file off the same flash through
  syscalls + copies, converts on the CPU, and scans at software speed with
  jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Set, Tuple

from repro.baseline.cpu import CpuModel
from repro.baseline.os_model import OsModel
from repro.dpu.hyperion import HyperionDpu
from repro.formats.parquet import read_footer, _decode_chunk
from repro.fs.ext4 import HyperExtFs
from repro.fs.spiffy import LayoutWalker, ext4_annotation
from repro.hw.nvme.commands import NvmeCommand, NvmeOpcode
from repro.hw.nvme.namespace import LBA_SIZE
from repro.formats.columnar import RecordBatch
from repro.sim import Simulator

#: The scan kernel's per-row cost in hardware (deep pipeline, one row per
#: cycle at 250 MHz) vs software (tens of ns/row once branch mispredicts
#: and cache misses are paid).
DPU_ROW_TIME = 4e-9
CPU_ROW_TIME = 40e-9


@dataclass
class AnalyticsQuery:
    """SELECT agg(column) WHERE predicate_column IN [low, high]."""

    path: str
    project: List[str]
    aggregate_column: str
    aggregate: str = "sum"
    predicate_column: Optional[str] = None
    predicate_low: Any = None
    predicate_high: Any = None

    def row_predicate(self, row) -> bool:
        if self.predicate_column is None:
            return True
        return self.predicate_low <= row[self.predicate_column] <= self.predicate_high

    def needed_columns(self) -> List[str]:
        needed = set(self.project) | {self.aggregate_column}
        if self.predicate_column:
            needed.add(self.predicate_column)
        return sorted(needed)


@dataclass
class ScanResult:
    """Outcome of one scan: answer, rows, bytes moved, elapsed time."""

    value: Any
    rows_scanned: int
    bytes_from_storage: int
    elapsed: float


def dpu_scan(sim: Simulator, dpu: HyperionDpu, fs: HyperExtFs, query: AnalyticsQuery):
    """Process: the CPU-free path — walker + device-side projection +
    hardware scan kernel."""
    started = sim.now
    dpu.require_booted()
    qp = dpu.ssds[0].create_queue_pair()
    namespace = fs.namespace

    # 1. Resolve the file through the annotation walker (counts its reads).
    walker = LayoutWalker(ext4_annotation(), namespace.read_blocks)
    size, pieces = walker.resolve_file(query.path)
    blocks_fetched = walker.blocks_read
    for _ in range(walker.blocks_read):
        completion = yield qp.submit(NvmeCommand(NvmeOpcode.READ, lba=0))
        assert completion.ok
    # The file is extent-contiguous; map byte ranges to physical LBAs.
    physical_start, __ = pieces[0]

    # 2. Footer: read the tail block(s).
    total_blocks = max(1, -(-size // LBA_SIZE))
    tail_lba = physical_start + total_blocks - 1
    completion = yield qp.submit(NvmeCommand(NvmeOpcode.READ, lba=tail_lba))
    assert completion.ok
    blocks_fetched += 1
    footer_raw = _assemble_tail(namespace, physical_start, total_blocks, size)
    footer = read_footer(footer_raw)

    # 3. Which chunk byte ranges survive projection + pushdown?
    needed = query.needed_columns()
    ranges: List[Tuple[int, int, str, int]] = []  # offset, length, col, rows
    for group in footer.row_groups:
        if query.predicate_column is not None:
            meta = group.chunks[query.predicate_column]
            if meta.min_value is not None and (
                meta.max_value < query.predicate_low
                or meta.min_value > query.predicate_high
            ):
                continue  # pushdown: skip the whole row group
        for name in needed:
            meta = group.chunks[name]
            ranges.append((meta.offset, meta.length, name, group.row_count))

    # 4. Fetch exactly the blocks covering those ranges — queued together
    #    so the flash dies serve them in parallel (why NVMe queues exist).
    needed_blocks: Set[int] = set()
    for offset, length, __, ___ in ranges:
        first = offset // LBA_SIZE
        last = (offset + max(length, 1) - 1) // LBA_SIZE
        needed_blocks.update(range(first, last + 1))
    ordered_blocks = sorted(needed_blocks)
    pending = [
        qp.submit(NvmeCommand(NvmeOpcode.READ, lba=physical_start + block))
        for block in ordered_blocks
    ]
    completions = yield sim.all_of(pending)
    file_bytes = {}
    for logical_block, event in zip(ordered_blocks, pending):
        completion = completions[event]
        assert completion.ok
        blocks_fetched += 1
        file_bytes[logical_block] = completion.data

    def read_range(offset: int, length: int) -> bytes:
        parts = []
        cursor = offset
        remaining = length
        while remaining > 0:
            block_index = cursor // LBA_SIZE
            within = cursor % LBA_SIZE
            take = min(remaining, LBA_SIZE - within)
            block = file_bytes[block_index]
            parts.append(block[within : within + take])
            cursor += take
            remaining -= take
        return b"".join(parts)

    # 5. Decode chunks -> in-memory columns (the Parquet->Arrow kernel).
    columns = {name: [] for name in needed}
    schema = footer.schema.select(needed)
    for offset, length, name, row_count in ranges:
        values = _decode_chunk(
            schema.type_of(name), read_range(offset, length), row_count
        )
        columns[name].extend(values)
    batch = RecordBatch(schema, columns)
    filtered = batch.filter(query.row_predicate)
    # 6. The hardware scan kernel: fixed time per row, no jitter.
    yield sim.timeout(len(batch) * DPU_ROW_TIME)
    value = filtered.aggregate(query.aggregate_column, query.aggregate)
    return ScanResult(
        value=value,
        rows_scanned=len(batch),
        bytes_from_storage=blocks_fetched * LBA_SIZE,
        elapsed=sim.now - started,
    )


def _assemble_tail(namespace, physical_start: int, total_blocks: int,
                   size: int) -> bytes:
    """Footer bytes from the file tail (footer may span a few blocks)."""
    # Read up to the last 8 blocks functionally (the timed read above
    # charged the device access; the footer rarely spans more than one).
    first = max(0, total_blocks - 8)
    raw = namespace.read_blocks(physical_start + first, total_blocks - first)
    skip = size - first * LBA_SIZE
    return raw[:skip]


def cpu_scan(
    sim: Simulator,
    cpu: CpuModel,
    os_model: OsModel,
    fs: HyperExtFs,
    query: AnalyticsQuery,
    controller=None,
):
    """Process: the CPU-centric path — full-file device read, syscalls,
    copies, software decode + scan.

    ``controller`` is the NVMe controller backing ``fs``; when given, the
    whole file's blocks are fetched through it before the host-side costs
    are charged (the server reads from the same flash the DPU does).
    """
    from repro.formats.parquet import read_table

    started = sim.now
    raw = fs.read_file(query.path)
    # The same flash must be read, block by block, before the host sees it.
    if controller is not None:
        qp = controller.create_queue_pair()
        for extent in fs.file_extents(query.path):
            completion = yield qp.submit(
                NvmeCommand(
                    NvmeOpcode.READ, lba=extent.physical, block_count=extent.length
                )
            )
            assert completion.ok
    # Host-side: syscalls + copy of the whole file.
    yield from os_model.read_storage(len(raw))
    # Software decode of every column (format translation on the CPU).
    batch = read_table(raw)
    decode_time = cpu.costs.memcpy_time(len(raw)) * 2  # decode ~2 passes
    yield sim.timeout(decode_time)
    filtered = batch.filter(query.row_predicate)
    # Software scan with interference jitter.
    scan_time = len(batch) * CPU_ROW_TIME
    jitter = 1.0 + cpu.rng.uniform(0, cpu.costs.jitter_fraction)
    yield sim.timeout(scan_time * jitter)
    value = filtered.aggregate(query.aggregate_column, query.aggregate)
    return ScanResult(
        value=value,
        rows_scanned=len(batch),
        bytes_from_storage=len(raw),
        elapsed=sim.now - started,
    )
