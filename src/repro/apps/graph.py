"""Graph analytics on network-attached storage (paper §4(2)).

One of the paper's candidate "killer workloads": "LDBC Graphalytics with
graph database ... data-intensive and have been shown to benefit from FPGA
acceleration". The graph lives in CSR form inside durable segments on the
DPU; a breadth-first search is the canonical pointer-chasing-at-scale
traversal:

* **client-side**: every frontier expansion fetches a vertex's adjacency
  over the network — RTTs proportional to vertices visited;
* **offloaded**: one RPC ships the query; the DPU walks its own segments
  at device latency and returns the result.
"""

from __future__ import annotations

import random
import struct
from collections import deque
from typing import Dict, List, Set, Tuple

from repro.common.ids import ObjectId
from repro.dpu.hyperion import HyperionDpu
from repro.sim import Simulator
from repro.transport.rpc import RpcClient, RpcServer

#: DPU-local adjacency fetch (segment in DRAM/flash-backed cache).
LOCAL_FETCH_LATENCY = 300e-9


class CsrGraph:
    """Compressed-sparse-row adjacency stored in two segments."""

    OFFSETS_OID = ObjectId(0x6AF0)
    EDGES_OID = ObjectId(0x6AF1)

    def __init__(self, dpu: HyperionDpu, vertex_count: int,
                 edges: List[Tuple[int, int]]):
        dpu.require_booted()
        self.dpu = dpu
        self.vertex_count = vertex_count
        adjacency: Dict[int, List[int]] = {v: [] for v in range(vertex_count)}
        for src, dst in edges:
            adjacency[src].append(dst)
        offsets = [0]
        flat: List[int] = []
        for vertex in range(vertex_count):
            flat.extend(sorted(adjacency[vertex]))
            offsets.append(len(flat))
        offsets_raw = b"".join(struct.pack("<I", o) for o in offsets)
        edges_raw = b"".join(struct.pack("<I", e) for e in flat)
        self.offsets_segment = dpu.store.allocate(
            max(4, len(offsets_raw)), durable=True, oid=self.OFFSETS_OID
        )
        self.edges_segment = dpu.store.allocate(
            max(4, len(edges_raw)), durable=True, oid=self.EDGES_OID
        )
        dpu.store.write(self.offsets_segment.oid, offsets_raw)
        if edges_raw:
            dpu.store.write(self.edges_segment.oid, edges_raw)
        self.edge_count = len(flat)

    def neighbors(self, vertex: int) -> List[int]:
        """Functional adjacency read straight from the segments."""
        if not 0 <= vertex < self.vertex_count:
            raise KeyError(f"no vertex {vertex}")
        raw = self.dpu.store.read(self.offsets_segment.oid, 8, offset=vertex * 4)
        start, end = struct.unpack("<II", raw)
        if start == end:
            return []
        raw = self.dpu.store.read(
            self.edges_segment.oid, (end - start) * 4, offset=start * 4
        )
        return [v[0] for v in struct.iter_unpack("<I", raw)]


def random_graph(vertex_count: int, avg_degree: float = 4.0,
                 seed: int = 3) -> List[Tuple[int, int]]:
    """A random digraph with a connected backbone (path + random edges)."""
    rng = random.Random(seed)
    edges = [(v, v + 1) for v in range(vertex_count - 1)]
    extra = int(vertex_count * max(0.0, avg_degree - 1))
    for _ in range(extra):
        edges.append((rng.randrange(vertex_count), rng.randrange(vertex_count)))
    return edges


class GraphService:
    """Hosts a CSR graph at the DPU; exports both access granularities."""

    def __init__(self, sim: Simulator, server: RpcServer, graph: CsrGraph):
        self.sim = sim
        self.graph = graph
        self.adjacency_fetches = 0
        self.offloaded_queries = 0
        server.register("graph.neighbors", self._neighbors)
        server.register("graph.bfs", self._bfs)
        server.register("graph.khop", self._khop)

    # -- fine-grained (client-side traversal) ----------------------------------
    def _neighbors(self, vertex: int):
        yield self.sim.timeout(LOCAL_FETCH_LATENCY)
        self.adjacency_fetches += 1
        return self.graph.neighbors(vertex)

    # -- offloaded ---------------------------------------------------------
    def _bfs(self, source: int, target: int):
        """Whole BFS at the DPU; returns hop distance or -1."""
        distance, visited = _bfs_distance(self.graph, source, target)
        yield self.sim.timeout(LOCAL_FETCH_LATENCY * max(1, visited))
        self.offloaded_queries += 1
        return distance

    def _khop(self, source: int, hops: int):
        """The LDBC-ish k-hop neighbourhood count."""
        frontier = {source}
        seen = {source}
        for _ in range(hops):
            nxt: Set[int] = set()
            for vertex in frontier:
                nxt.update(self.graph.neighbors(vertex))
            nxt -= seen
            seen |= nxt
            frontier = nxt
        yield self.sim.timeout(LOCAL_FETCH_LATENCY * max(1, len(seen)))
        self.offloaded_queries += 1
        return len(seen)


def _bfs_distance(graph: CsrGraph, source: int, target: int) -> Tuple[int, int]:
    """(hop distance or -1, vertices visited)."""
    if source == target:
        return 0, 1
    queue = deque([(source, 0)])
    seen = {source}
    while queue:
        vertex, depth = queue.popleft()
        for neighbor in graph.neighbors(vertex):
            if neighbor in seen:
                continue
            if neighbor == target:
                return depth + 1, len(seen) + 1
            seen.add(neighbor)
            queue.append((neighbor, depth + 1))
    return -1, len(seen)


def client_side_bfs(client: RpcClient, server_address: str, source: int,
                    target: int):
    """Process: BFS where every adjacency list crosses the network.

    Returns ``(distance, round_trips)``.
    """
    if source == target:
        return 0, 0
    round_trips = 0
    queue = deque([(source, 0)])
    seen = {source}
    while queue:
        vertex, depth = queue.popleft()
        neighbors = yield from client.call(
            server_address, "graph.neighbors", vertex,
            request_size=24, response_size=256,
        )
        round_trips += 1
        for neighbor in neighbors:
            if neighbor in seen:
                continue
            if neighbor == target:
                return depth + 1, round_trips
            seen.add(neighbor)
            queue.append((neighbor, depth + 1))
    return -1, round_trips


def offloaded_bfs(client: RpcClient, server_address: str, source: int,
                  target: int):
    """Process: one RPC; the DPU traverses locally. Returns (distance, 1)."""
    distance = yield from client.call(
        server_address, "graph.bfs", source, target,
        request_size=32, response_size=16,
    )
    return distance, 1
