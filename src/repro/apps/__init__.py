"""The paper's §2.4 workloads, runnable on the DPU and on the baseline.

* :mod:`repro.apps.fail2ban` — high-volume network middleware with
  persistent, traffic-proportional state;
* :mod:`repro.apps.loadbalancer` — a Tiara-style L4 load balancer whose
  connection table overflows from DRAM to SSD;
* :mod:`repro.apps.pointer_chase` — latency-sensitive pointer chasing over
  a disaggregated B+ tree, client-side vs DPU-offloaded;
* :mod:`repro.apps.analytics` — the §2.3 end-to-end columnar scan:
  annotation walker -> Parquet chunks -> Arrow -> filter/aggregate.
"""

from repro.apps.fail2ban import (
    Fail2BanDpu,
    Fail2BanBaseline,
    PacketRecord,
    build_fail2ban_program,
    generate_packet_trace,
)
from repro.apps.loadbalancer import LoadBalancer, LbPacket, generate_connections
from repro.apps.pointer_chase import (
    RemoteTreeService,
    client_side_lookup,
    offloaded_lookup,
)
from repro.apps.analytics import AnalyticsQuery, dpu_scan, cpu_scan
from repro.apps.graph import (
    CsrGraph,
    GraphService,
    client_side_bfs,
    offloaded_bfs,
    random_graph,
)

__all__ = [
    "Fail2BanDpu",
    "Fail2BanBaseline",
    "PacketRecord",
    "build_fail2ban_program",
    "generate_packet_trace",
    "LoadBalancer",
    "LbPacket",
    "generate_connections",
    "RemoteTreeService",
    "client_side_lookup",
    "offloaded_lookup",
    "AnalyticsQuery",
    "dpu_scan",
    "cpu_scan",
    "CsrGraph",
    "GraphService",
    "client_side_bfs",
    "offloaded_bfs",
    "random_graph",
]
