"""Disaggregated pointer chasing: the paper's latency argument (§2.4).

"In a disaggregated storage, pointer chasing over B+ trees, extent trees,
LSM trees ... results in multiple network RTTs with significant performance
degradation. These latency-sensitive applications can now be deployed in
the FPGA even if they access higher-level data objects."

The tree lives at the DPU. Two access paths:

* **client-side** — the client fetches node after node: one RPC round trip
  *per level* of the tree;
* **offloaded** — one RPC carries the key; a verified eBPF-derived walker
  traverses locally at device latencies and returns the value: one RTT.
"""

from __future__ import annotations

import random
from typing import Any

from repro.datastruct.bptree import BPlusTree
from repro.sim import Simulator
from repro.transport.rpc import RpcClient, RpcServer

#: Modeled wire size of one serialized B+ node (keys + child ids).
NODE_WIRE_SIZE = 1024
#: DPU-local node fetch cost (node cached in FPGA DRAM).
LOCAL_FETCH_LATENCY = 200e-9


class RemoteTreeService:
    """Hosts a B+ tree at the DPU; exports both access granularities."""

    def __init__(self, sim: Simulator, server: RpcServer, order: int = 8):
        self.sim = sim
        self.tree = BPlusTree(order=order)
        self.node_fetches_served = 0
        self.offloaded_lookups_served = 0
        server.register("tree.root", self._root)
        server.register("tree.node", self._fetch_node)
        server.register("tree.lookup", self._lookup)
        server.register("tree.insert", self._insert)

    def populate(self, count: int, seed: int = 5) -> None:
        keys = list(range(count))
        random.Random(seed).shuffle(keys)
        for key in keys:
            self.tree.insert(key, f"value-{key}")

    # -- fine-grained interface (client-side chasing) -------------------------
    def _root(self) -> int:
        return self.tree.root_id

    def _fetch_node(self, node_id: int):
        yield self.sim.timeout(LOCAL_FETCH_LATENCY)
        self.node_fetches_served += 1
        node = self.tree.store.fetch(node_id)
        return {
            "is_leaf": node.is_leaf,
            "keys": list(node.keys),
            "children": list(node.children),
            "values": list(node.values),
        }

    # -- offloaded interface ---------------------------------------------------
    def _lookup(self, key: Any):
        """The near-data walker: whole traversal at local latency."""
        path = self.tree.search_path(key)
        for _ in path:
            yield self.sim.timeout(LOCAL_FETCH_LATENCY)
        self.offloaded_lookups_served += 1
        return self.tree.get(key)

    def _insert(self, key: Any, value: Any):
        yield self.sim.timeout(LOCAL_FETCH_LATENCY * self.tree.height)
        self.tree.insert(key, value)
        return True


def client_side_lookup(client: RpcClient, server_address: str, key: Any):
    """Process: chase the tree node by node over the network.

    Returns ``(value, round_trips)``.
    """
    root_id = yield from client.call(
        server_address, "tree.root", request_size=16, response_size=16
    )
    round_trips = 1
    node_id = root_id
    while True:
        node = yield from client.call(
            server_address, "tree.node", node_id,
            request_size=24, response_size=NODE_WIRE_SIZE,
        )
        round_trips += 1
        if node["is_leaf"]:
            for leaf_key, value in zip(node["keys"], node["values"]):
                if leaf_key == key:
                    return value, round_trips
            return None, round_trips
        # binary decision, client-side
        index = 0
        while index < len(node["keys"]) and key >= node["keys"][index]:
            index += 1
        node_id = node["children"][index]


def offloaded_lookup(client: RpcClient, server_address: str, key: Any):
    """Process: one RPC; the DPU walks the tree. Returns (value, rtts=1)."""
    value = yield from client.call(
        server_address, "tree.lookup", key,
        request_size=32, response_size=64,
    )
    return value, 1
