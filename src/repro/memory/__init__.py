"""The single-level, segmentation-based memory/storage model (paper §2.1).

Hyperion replaces the two-level DRAM/storage split (and page-based virtual
memory) with one address space of 128-bit segments. A segment translation
table maps segment ids to bus addresses in DRAM, HBM, or on NVMe flash;
placement is static by default with optional hint-based promotion, and the
table itself persists to a boot NVMe area so durable segments survive power
loss.

For the paper's overhead comparison (segments vs pages), the package also
contains a baseline page-based virtual memory model with a 4-level walk and
TLB.
"""

from repro.memory.segments import Segment, SegmentLocation, PlacementHint
from repro.memory.table import SegmentTranslationTable
from repro.memory.backends import DramBackend, NvmeBackend
from repro.memory.store import SingleLevelStore
from repro.memory.vm import PageTableModel, TlbModel, VirtualMemoryModel

__all__ = [
    "Segment",
    "SegmentLocation",
    "PlacementHint",
    "SegmentTranslationTable",
    "DramBackend",
    "NvmeBackend",
    "SingleLevelStore",
    "PageTableModel",
    "TlbModel",
    "VirtualMemoryModel",
]
