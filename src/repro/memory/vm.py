"""Baseline page-based virtual memory: 4-level walks and a TLB.

The paper argues (§1, §2.1) that CPU-centric virtual memory — page tables,
TLBs, nested walks — is a major source of complexity and overhead that
accelerators inherit, and that coarse, object-granular segment translation
avoids it. This model makes that comparison measurable: it counts the
memory accesses a radix page walk costs across a working-set sweep, versus
one associative lookup per segment.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

PAGE_SIZE = 4096
#: x86-64 style 4-level radix table.
WALK_LEVELS = 4
#: A pointer-chase DRAM access during a table walk (no caching of PTEs).
WALK_ACCESS_LATENCY = 80e-9
#: An on-fabric associative lookup (BRAM hit) for segment translation.
SEGMENT_LOOKUP_LATENCY = 5e-9


@dataclass
class TranslationResult:
    """Cost accounting for one address translation."""

    hit: bool
    memory_accesses: int
    latency: float


class TlbModel:
    """A fixed-capacity, LRU translation lookaside buffer."""

    def __init__(self, entries: int = 1536, page_size: int = PAGE_SIZE):
        if entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.entries = entries
        self.page_size = page_size
        self._cache: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, vaddr: int) -> bool:
        page = vaddr // self.page_size
        if page in self._cache:
            self._cache.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        self._cache[page] = True
        if len(self._cache) > self.entries:
            self._cache.popitem(last=False)
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PageTableModel:
    """A radix page table: a miss costs ``levels`` dependent memory reads."""

    def __init__(
        self,
        levels: int = WALK_LEVELS,
        access_latency: float = WALK_ACCESS_LATENCY,
    ):
        self.levels = levels
        self.access_latency = access_latency
        self.walks = 0

    def walk(self) -> TranslationResult:
        self.walks += 1
        return TranslationResult(
            hit=False,
            memory_accesses=self.levels,
            latency=self.levels * self.access_latency,
        )


class VirtualMemoryModel:
    """TLB + page table: the CPU-centric translation baseline.

    ``page_size`` allows the huge-page ablation (2 MiB pages extend TLB
    reach at the cost of one fewer radix level, as on x86-64).
    """

    def __init__(self, tlb_entries: int = 1536, levels: int = WALK_LEVELS,
                 page_size: int = PAGE_SIZE):
        self.tlb = TlbModel(entries=tlb_entries, page_size=page_size)
        self.page_table = PageTableModel(levels=levels)

    def translate(self, vaddr: int) -> TranslationResult:
        if self.tlb.lookup(vaddr):
            return TranslationResult(hit=True, memory_accesses=0, latency=0.0)
        return self.page_table.walk()

    def total_cost(self) -> float:
        """Cumulative translation latency so far."""
        return self.page_table.walks * self.page_table.levels * (
            self.page_table.access_latency
        )


def segment_translation_result() -> TranslationResult:
    """One segment-table lookup: a single associative access."""
    return TranslationResult(hit=True, memory_accesses=1, latency=SEGMENT_LOOKUP_LATENCY)
