"""Segment descriptors: the unit of naming in the single-level store."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.ids import ObjectId


class SegmentLocation(enum.Enum):
    """Where a segment's bytes currently live."""

    DRAM = "dram"
    HBM = "hbm"
    NVME = "nvme"


class PlacementHint(enum.Enum):
    """Allocation hints (paper §2.1: "hints-based allocation should also be
    possible where temporary and/or performance-critical objects are
    allocated or eventually promoted to DRAM or HBM")."""

    NONE = "none"
    PERFORMANCE_CRITICAL = "performance-critical"
    TEMPORARY = "temporary"
    COLD = "cold"


@dataclass
class Segment:
    """One named, contiguous object in the unified address space.

    ``bus_address`` is the segment's location on the AXI interconnect: the
    static address-range split decides whether that resolves to DRAM or to
    an NVMe BAR window (paper §2.1).
    """

    oid: ObjectId
    size: int
    location: SegmentLocation
    bus_address: int
    durable: bool = False
    access_count: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("segment size must be positive")
        if self.bus_address < 0:
            raise ValueError("bus address must be non-negative")

    def to_record(self) -> bytes:
        """Fixed 40-byte on-disk record for table persistence."""
        flags = (1 if self.durable else 0) | (
            {"dram": 0, "hbm": 1, "nvme": 2}[self.location.value] << 1
        )
        return (
            self.oid.to_bytes()
            + self.size.to_bytes(8, "big")
            + self.bus_address.to_bytes(8, "big")
            + flags.to_bytes(8, "big")
        )

    @classmethod
    def from_record(cls, record: bytes) -> "Segment":
        if len(record) != 40:
            raise ValueError("segment record must be 40 bytes")
        oid = ObjectId.from_bytes(record[:16])
        size = int.from_bytes(record[16:24], "big")
        bus_address = int.from_bytes(record[24:32], "big")
        flags = int.from_bytes(record[32:40], "big")
        location = [SegmentLocation.DRAM, SegmentLocation.HBM, SegmentLocation.NVME][
            (flags >> 1) & 0x3
        ]
        return cls(oid, size, location, bus_address, durable=bool(flags & 1))

    RECORD_SIZE = 40
