"""Backing stores for segments: on-card DRAM/HBM and NVMe flash.

Each backend exposes the same small interface:

* ``read(offset, size)`` / ``write(offset, data)`` — functional access used
  by the layers that only care about contents (data structures, formats);
* ``timed_read`` / ``timed_write`` — simulation processes charging the
  device's real latency, used by the datapath experiments.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import CapacityError, DegradedError
from repro.hw.fpga.fabric import MemoryBank
from repro.hw.nvme.commands import NvmeCommand, NvmeOpcode, NvmeStatus
from repro.hw.nvme.controller import NvmeController, NvmeQueuePair
from repro.hw.nvme.namespace import LBA_SIZE, Namespace
from repro.sim import Simulator


class DramBackend:
    """A byte-addressable on-card memory bank (DDR4 or HBM)."""

    def __init__(self, sim: Simulator, bank: MemoryBank, capacity: Optional[int] = None):
        self.sim = sim
        self.bank = bank
        self.capacity = capacity if capacity is not None else bank.capacity
        self._bytes = bytearray()
        self.reads = 0
        self.writes = 0

    def _ensure(self, end: int) -> None:
        if end > self.capacity:
            raise CapacityError(f"access beyond {self.bank.name} capacity")
        if end > len(self._bytes):
            self._bytes.extend(b"\x00" * (end - len(self._bytes)))

    def read(self, offset: int, size: int) -> bytes:
        self._ensure(offset + size)
        self.reads += 1
        return bytes(self._bytes[offset : offset + size])

    def write(self, offset: int, data: bytes) -> None:
        self._ensure(offset + len(data))
        self.writes += 1
        self._bytes[offset : offset + len(data)] = data

    def timed_read(self, offset: int, size: int):
        yield self.sim.timeout(self.bank.transfer_time(size))
        return self.read(offset, size)

    def timed_write(self, offset: int, data: bytes):
        yield self.sim.timeout(self.bank.transfer_time(len(data)))
        self.write(offset, data)


class NvmeBackend:
    """A window of an NVMe namespace, addressed in bytes.

    Byte offsets map to LBAs; sub-block writes do read-modify-write the way
    a flash translation layer would.
    """

    def __init__(
        self,
        sim: Simulator,
        controller: NvmeController,
        queue_pair: NvmeQueuePair,
        namespace_id: int = 1,
        base_lba: int = 0,
        block_count: Optional[int] = None,
        read_retries: int = 2,
    ):
        self.sim = sim
        self.controller = controller
        self.qp = queue_pair
        self.namespace_id = namespace_id
        self.base_lba = base_lba
        self.read_retries = read_retries
        self.retried_reads = 0
        namespace = controller.namespaces[namespace_id]
        max_blocks = namespace.capacity_blocks - base_lba
        self.block_count = block_count if block_count is not None else max_blocks
        if self.block_count <= 0 or self.block_count > max_blocks:
            raise CapacityError("NVMe backend window out of range")

    @property
    def capacity(self) -> int:
        return self.block_count * LBA_SIZE

    def _namespace(self) -> Namespace:
        return self.controller.namespaces[self.namespace_id]

    def _span(self, offset: int, size: int):
        if offset < 0 or offset + size > self.capacity:
            raise CapacityError("access beyond NVMe backend window")
        first = self.base_lba + offset // LBA_SIZE
        last = self.base_lba + (offset + size - 1) // LBA_SIZE if size else first
        return first, last - first + 1, offset % LBA_SIZE

    # -- functional access ---------------------------------------------------
    def read(self, offset: int, size: int) -> bytes:
        if size == 0:
            return b""
        first, count, skip = self._span(offset, size)
        raw = self._namespace().read_blocks(first, count)
        return raw[skip : skip + size]

    def write(self, offset: int, data: bytes) -> None:
        if not data:
            return
        first, count, skip = self._span(offset, len(data))
        raw = bytearray(self._namespace().read_blocks(first, count))
        raw[skip : skip + len(data)] = data
        self._namespace().write_blocks(first, bytes(raw))

    # -- timed access --------------------------------------------------------
    def timed_read(self, offset: int, size: int):
        """Process: one read, retried per the backend's recovery policy.

        Transient media errors (injected UNRECOVERED_READ_ERROR, aborted
        commands) are retried up to ``read_retries`` times — the in-device
        read-retry a real FTL performs — before the failure surfaces as a
        :class:`DegradedError`.
        """
        if size == 0:
            return b""
        first, count, __ = self._span(offset, size)
        retryable = (NvmeStatus.UNRECOVERED_READ_ERROR, NvmeStatus.COMMAND_ABORTED)
        for attempt in range(self.read_retries + 1):
            completion = yield self.qp.submit(
                NvmeCommand(
                    NvmeOpcode.READ,
                    namespace_id=self.namespace_id,
                    lba=first,
                    block_count=count,
                )
            )
            if completion.ok:
                return self.read(offset, size)
            if completion.status not in retryable:
                raise CapacityError(f"NVMe read failed: {completion.status}")
            if attempt < self.read_retries:
                self.retried_reads += 1
        raise DegradedError(
            f"NVMe read failed after {self.read_retries + 1} attempts: "
            f"{completion.status}"
        )

    def timed_write(self, offset: int, data: bytes):
        if not data:
            return
        first, count, skip = self._span(offset, len(data))
        raw = bytearray(self._namespace().read_blocks(first, count))
        raw[skip : skip + len(data)] = data
        completion = yield self.qp.submit(
            NvmeCommand(
                NvmeOpcode.WRITE,
                namespace_id=self.namespace_id,
                lba=first,
                data=bytes(raw),
            )
        )
        if not completion.ok:
            raise CapacityError(f"NVMe write failed: {completion.status}")
