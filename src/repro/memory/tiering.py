"""Hint- and access-driven segment tiering (paper §2.1).

"we expect hints-based allocation should also be possible where temporary
and/or performance-critical objects are allocated or eventually promoted to
DRAM or HBM."

The policy watches per-segment access counts between epochs and migrates:

* hot NVMe segments (non-durable) up to DRAM (or HBM when available);
* cold DRAM segments down to NVMe when DRAM pressure crosses a watermark.

It is deliberately mechanism-over-policy thin: `run_epoch` is called by
whoever owns the control loop (the OS-shell, a timer process, a test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import CapacityError
from repro.common.ids import ObjectId
from repro.faults import FaultInjector, FaultKind
from repro.memory.segments import Segment, SegmentLocation
from repro.memory.store import SingleLevelStore
from repro.overload.breaker import CircuitBreaker
from repro.overload.queues import BoundedQueue, QueuePolicy
from repro.telemetry import MetricScope


@dataclass
class TieringDecision:
    """One migration: which segment moved where, and why."""

    oid: ObjectId
    moved_from: SegmentLocation
    moved_to: SegmentLocation
    accesses_in_epoch: int


class TieringStats:
    """Cumulative promotion/demotion counts across epochs.

    Counts are a facade over telemetry counters; ``decisions`` stays a
    plain list (structured records, not a metric).
    """

    def __init__(self, metrics: Optional[MetricScope] = None):
        self._metrics = (
            metrics if metrics is not None
            else MetricScope.standalone("memory.tiering")
        )
        self._epochs = self._metrics.counter("epochs")
        self._promotions = self._metrics.counter("promotions")
        self._demotions = self._metrics.counter("demotions")
        # Promotions that fell back to a slower tier (or stayed on flash)
        # because the preferred tier's backend was down or full.
        self._degraded = self._metrics.counter("degraded")
        self.decisions: List[TieringDecision] = []

    @property
    def epochs(self) -> int:
        return self._epochs.value

    @epochs.setter
    def epochs(self, value: int) -> None:
        self._epochs._set(value)

    @property
    def promotions(self) -> int:
        return self._promotions.value

    @promotions.setter
    def promotions(self, value: int) -> None:
        self._promotions._set(value)

    @property
    def demotions(self) -> int:
        return self._demotions.value

    @demotions.setter
    def demotions(self, value: int) -> None:
        self._demotions._set(value)

    @property
    def degraded(self) -> int:
        return self._degraded.value

    @degraded.setter
    def degraded(self, value: int) -> None:
        self._degraded._set(value)


class TieringPolicy:
    """Epoch-based promotion/demotion over a :class:`SingleLevelStore`.

    Promotion backlog is an explicit :class:`~repro.overload.BoundedQueue`
    of hot candidates: each epoch's scan enqueues, the move budget drains.
    The old behaviour was an implicit unbounded queue — unpromoted hot
    segments were silently rediscovered every epoch — which hid how far
    behind the mover was. Now the backlog has a depth gauge and a drop
    counter, and under a move-budget crunch the oldest candidates are
    shed visibly instead of accumulating.

    Each fast tier is also guarded by a
    :class:`~repro.overload.CircuitBreaker`: repeated ``CapacityError``
    promotions trip the breaker, and while it is open the policy degrades
    (HBM -> DRAM -> stay-on-flash) without re-attempting the full tier —
    the same ladder BACKEND_DOWN fault windows trigger.
    """

    def __init__(
        self,
        store: SingleLevelStore,
        hot_threshold: int = 8,
        cold_threshold: int = 0,
        dram_high_watermark: float = 0.9,
        prefer_hbm: bool = False,
        max_moves_per_epoch: int = 16,
        injector: Optional[FaultInjector] = None,
        component: str = "tiering",
        promotion_queue_capacity: int = 64,
        breaker_failure_threshold: int = 3,
        breaker_reset_timeout: float = 100e-3,
    ):
        self.store = store
        self.hot_threshold = hot_threshold
        self.cold_threshold = cold_threshold
        self.dram_high_watermark = dram_high_watermark
        self.prefer_hbm = prefer_hbm and store.hbm is not None
        self.max_moves_per_epoch = max_moves_per_epoch
        self.injector = injector
        self.component = component
        self._metrics = store.sim.telemetry.unique_scope(f"memory.{component}")
        self.stats = TieringStats(self._metrics)
        self._last_counts: Dict[ObjectId, int] = {}
        #: Hot candidates awaiting a move-budget slot: (segment, accesses).
        self.promotion_queue = BoundedQueue(
            store.sim, self._metrics.scope("queue"),
            promotion_queue_capacity, policy=QueuePolicy.FIFO,
            on_drop=self._on_queue_drop,
        )
        self._queued: Set[ObjectId] = set()
        self.breakers: Dict[SegmentLocation, CircuitBreaker] = {}
        for tier in (SegmentLocation.HBM, SegmentLocation.DRAM):
            if tier is SegmentLocation.HBM and store.hbm is None:
                continue
            self.breakers[tier] = CircuitBreaker(
                store.sim, self._metrics.scope(f"breaker.{tier.value}"),
                failure_threshold=breaker_failure_threshold,
                reset_timeout=breaker_reset_timeout,
            )

    def _on_queue_drop(self, entry: Tuple[Segment, int], reason: str) -> None:
        segment, __ = entry
        self._queued.discard(segment.oid)

    # -- internals -------------------------------------------------------------
    def _epoch_accesses(self, segment: Segment) -> int:
        return segment.access_count - self._last_counts.get(segment.oid, 0)

    def _dram_pressure(self) -> float:
        allocator = self.store._allocators[SegmentLocation.DRAM]
        return allocator.bytes_used / allocator.capacity

    def _tier_up(self, tier: SegmentLocation) -> bool:
        """Is the backend behind ``tier`` currently serving?

        Consults component id ``<component>.<tier>`` for BACKEND_DOWN
        windows (e.g. an HBM stack in thermal shutdown).
        """
        if self.injector is None:
            return True
        return not self.injector.active(
            f"{self.component}.{tier.value}", FaultKind.BACKEND_DOWN
        )

    def _fast_tier(self) -> Optional[SegmentLocation]:
        """The best *available* promotion target, degrading HBM -> DRAM ->
        stay-on-flash as backends fault out."""
        preferred = SegmentLocation.HBM if self.prefer_hbm else SegmentLocation.DRAM
        for tier in dict.fromkeys((preferred, SegmentLocation.DRAM)):
            if self._tier_up(tier):
                return tier
        return None

    def _promotion_target(self):
        """The best tier that is fault-free *and* whose breaker admits an
        attempt; returns ``(tier, breaker)`` or ``(None, None)``."""
        preferred = SegmentLocation.HBM if self.prefer_hbm else SegmentLocation.DRAM
        for tier in dict.fromkeys((preferred, SegmentLocation.DRAM)):
            if not self._tier_up(tier):
                continue
            breaker = self.breakers.get(tier)
            if breaker is not None and not breaker.allow():
                continue
            return tier, breaker
        return None, None

    # -- the policy ------------------------------------------------------------
    def run_epoch(self) -> List[TieringDecision]:
        """Inspect counters since the last epoch and migrate segments."""
        decisions: List[TieringDecision] = []
        moves = 0
        preferred = (
            SegmentLocation.HBM if self.prefer_hbm else SegmentLocation.DRAM
        )

        # Scan: hot flash-resident, non-durable segments join the backlog.
        for segment in list(self.store.segments_at(SegmentLocation.NVME)):
            if segment.durable:
                continue  # durability pins segments to flash (paper §2.1)
            if segment.oid in self._queued:
                continue
            accesses = self._epoch_accesses(segment)
            if accesses >= self.hot_threshold:
                if self.promotion_queue.try_put((segment, accesses)):
                    self._queued.add(segment.oid)

        # Drain: the move budget serves the backlog oldest-first.
        while moves < self.max_moves_per_epoch:
            entry = self.promotion_queue.poll()
            if entry is None:
                break
            segment, accesses = entry
            self._queued.discard(segment.oid)
            if (segment.oid not in self.store.table
                    or segment.location is not SegmentLocation.NVME):
                continue  # freed or already moved since it was queued
            target, breaker = self._promotion_target()
            if target is None:
                # Every fast tier is down or circuit-open: serve from
                # flash and hold the backlog until one recovers.
                self.stats.degraded += 1
                if self.promotion_queue.try_put((segment, accesses)):
                    self._queued.add(segment.oid)
                break
            if target is not preferred:
                self.stats.degraded += 1
            try:
                self.store.promote(segment.oid, target)
            except CapacityError:
                # Target tier full: stay on flash rather than fail. The
                # breaker turns a persistently full tier into a fast skip.
                if breaker is not None:
                    breaker.record_failure()
                self.stats.degraded += 1
                continue
            if breaker is not None:
                breaker.record_success()
            decisions.append(
                TieringDecision(segment.oid, SegmentLocation.NVME,
                                target, accesses)
            )
            self.stats.promotions += 1
            moves += 1

        # Demotions: under DRAM pressure, idle segments move down.
        if self._dram_pressure() > self.dram_high_watermark:
            candidates = sorted(
                self.store.segments_at(SegmentLocation.DRAM),
                key=self._epoch_accesses,
            )
            for segment in candidates:
                if moves >= self.max_moves_per_epoch:
                    break
                if self._epoch_accesses(segment) > self.cold_threshold:
                    break  # sorted: the rest are warmer
                self.store.promote(segment.oid, SegmentLocation.NVME)
                decisions.append(
                    TieringDecision(segment.oid, SegmentLocation.DRAM,
                                    SegmentLocation.NVME,
                                    self._epoch_accesses(segment))
                )
                self.stats.demotions += 1
                moves += 1

        # Close the epoch.
        for segment in self.store.table:
            self._last_counts[segment.oid] = segment.access_count
        self.stats.epochs += 1
        self.stats.decisions.extend(decisions)
        return decisions
