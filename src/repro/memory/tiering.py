"""Hint- and access-driven segment tiering (paper §2.1).

"we expect hints-based allocation should also be possible where temporary
and/or performance-critical objects are allocated or eventually promoted to
DRAM or HBM."

The policy watches per-segment access counts between epochs and migrates:

* hot NVMe segments (non-durable) up to DRAM (or HBM when available);
* cold DRAM segments down to NVMe when DRAM pressure crosses a watermark.

It is deliberately mechanism-over-policy thin: `run_epoch` is called by
whoever owns the control loop (the OS-shell, a timer process, a test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import CapacityError
from repro.common.ids import ObjectId
from repro.faults import FaultInjector, FaultKind
from repro.memory.segments import Segment, SegmentLocation
from repro.memory.store import SingleLevelStore
from repro.telemetry import MetricScope


@dataclass
class TieringDecision:
    """One migration: which segment moved where, and why."""

    oid: ObjectId
    moved_from: SegmentLocation
    moved_to: SegmentLocation
    accesses_in_epoch: int


class TieringStats:
    """Cumulative promotion/demotion counts across epochs.

    Counts are a facade over telemetry counters; ``decisions`` stays a
    plain list (structured records, not a metric).
    """

    def __init__(self, metrics: Optional[MetricScope] = None):
        self._metrics = (
            metrics if metrics is not None
            else MetricScope.standalone("memory.tiering")
        )
        self._epochs = self._metrics.counter("epochs")
        self._promotions = self._metrics.counter("promotions")
        self._demotions = self._metrics.counter("demotions")
        # Promotions that fell back to a slower tier (or stayed on flash)
        # because the preferred tier's backend was down or full.
        self._degraded = self._metrics.counter("degraded")
        self.decisions: List[TieringDecision] = []

    @property
    def epochs(self) -> int:
        return self._epochs.value

    @epochs.setter
    def epochs(self, value: int) -> None:
        self._epochs._set(value)

    @property
    def promotions(self) -> int:
        return self._promotions.value

    @promotions.setter
    def promotions(self, value: int) -> None:
        self._promotions._set(value)

    @property
    def demotions(self) -> int:
        return self._demotions.value

    @demotions.setter
    def demotions(self, value: int) -> None:
        self._demotions._set(value)

    @property
    def degraded(self) -> int:
        return self._degraded.value

    @degraded.setter
    def degraded(self, value: int) -> None:
        self._degraded._set(value)


class TieringPolicy:
    """Epoch-based promotion/demotion over a :class:`SingleLevelStore`."""

    def __init__(
        self,
        store: SingleLevelStore,
        hot_threshold: int = 8,
        cold_threshold: int = 0,
        dram_high_watermark: float = 0.9,
        prefer_hbm: bool = False,
        max_moves_per_epoch: int = 16,
        injector: Optional[FaultInjector] = None,
        component: str = "tiering",
    ):
        self.store = store
        self.hot_threshold = hot_threshold
        self.cold_threshold = cold_threshold
        self.dram_high_watermark = dram_high_watermark
        self.prefer_hbm = prefer_hbm and store.hbm is not None
        self.max_moves_per_epoch = max_moves_per_epoch
        self.injector = injector
        self.component = component
        self.stats = TieringStats(
            store.sim.telemetry.unique_scope(f"memory.{component}")
        )
        self._last_counts: Dict[ObjectId, int] = {}

    # -- internals -------------------------------------------------------------
    def _epoch_accesses(self, segment: Segment) -> int:
        return segment.access_count - self._last_counts.get(segment.oid, 0)

    def _dram_pressure(self) -> float:
        allocator = self.store._allocators[SegmentLocation.DRAM]
        return allocator.bytes_used / allocator.capacity

    def _tier_up(self, tier: SegmentLocation) -> bool:
        """Is the backend behind ``tier`` currently serving?

        Consults component id ``<component>.<tier>`` for BACKEND_DOWN
        windows (e.g. an HBM stack in thermal shutdown).
        """
        if self.injector is None:
            return True
        return not self.injector.active(
            f"{self.component}.{tier.value}", FaultKind.BACKEND_DOWN
        )

    def _fast_tier(self) -> Optional[SegmentLocation]:
        """The best *available* promotion target, degrading HBM -> DRAM ->
        stay-on-flash as backends fault out."""
        preferred = SegmentLocation.HBM if self.prefer_hbm else SegmentLocation.DRAM
        for tier in dict.fromkeys((preferred, SegmentLocation.DRAM)):
            if self._tier_up(tier):
                return tier
        return None

    # -- the policy ------------------------------------------------------------
    def run_epoch(self) -> List[TieringDecision]:
        """Inspect counters since the last epoch and migrate segments."""
        decisions: List[TieringDecision] = []
        moves = 0

        # Promotions: hot flash-resident, non-durable segments move up.
        for segment in list(self.store.segments_at(SegmentLocation.NVME)):
            if moves >= self.max_moves_per_epoch:
                break
            if segment.durable:
                continue  # durability pins segments to flash (paper §2.1)
            accesses = self._epoch_accesses(segment)
            if accesses >= self.hot_threshold:
                target = self._fast_tier()
                if target is None:
                    # Every fast tier is down: serve from flash this epoch.
                    self.stats.degraded += 1
                    continue
                if target is not (
                    SegmentLocation.HBM if self.prefer_hbm
                    else SegmentLocation.DRAM
                ):
                    self.stats.degraded += 1
                try:
                    self.store.promote(segment.oid, target)
                except CapacityError:
                    # Target tier full: stay on flash rather than fail.
                    self.stats.degraded += 1
                    continue
                decisions.append(
                    TieringDecision(segment.oid, SegmentLocation.NVME,
                                    target, accesses)
                )
                self.stats.promotions += 1
                moves += 1

        # Demotions: under DRAM pressure, idle segments move down.
        if self._dram_pressure() > self.dram_high_watermark:
            candidates = sorted(
                self.store.segments_at(SegmentLocation.DRAM),
                key=self._epoch_accesses,
            )
            for segment in candidates:
                if moves >= self.max_moves_per_epoch:
                    break
                if self._epoch_accesses(segment) > self.cold_threshold:
                    break  # sorted: the rest are warmer
                self.store.promote(segment.oid, SegmentLocation.NVME)
                decisions.append(
                    TieringDecision(segment.oid, SegmentLocation.DRAM,
                                    SegmentLocation.NVME,
                                    self._epoch_accesses(segment))
                )
                self.stats.demotions += 1
                moves += 1

        # Close the epoch.
        for segment in self.store.table:
            self._last_counts[segment.oid] = segment.access_count
        self.stats.epochs += 1
        self.stats.decisions.extend(decisions)
        return decisions
