"""The single-level store: allocation, placement, access, and recovery.

This is Hyperion's replacement for both ``malloc`` and the file system: one
namespace of 128-bit segments whose total capacity is "DRAM plus NVMe
storage capacities" (paper §2.1). Bus-address ranges statically decide
location; durable segments must live on NVMe; the translation table is
periodically persisted to a pre-selected boot area and recovered after power
loss.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.common.errors import CapacityError, ConfigurationError
from repro.common.ids import ObjectId
from repro.hw.nvme.namespace import LBA_SIZE
from repro.memory.backends import DramBackend, NvmeBackend
from repro.memory.segments import PlacementHint, Segment, SegmentLocation
from repro.memory.table import SegmentTranslationTable
from repro.sim import Simulator
from repro.telemetry import MetricScope

#: Bus-address bases of the static AXI range split (paper §2.1).
DRAM_WINDOW_BASE = 0x0000_0000_0000
HBM_WINDOW_BASE = 0x0010_0000_0000
NVME_WINDOW_BASE = 0x0100_0000_0000

#: Blocks reserved at the start of the NVMe window for the persisted table.
BOOT_AREA_BLOCKS = 256


class _Allocator:
    """First-fit free-list allocator over one backend's byte range."""

    def __init__(self, capacity: int, base: int = 0):
        self.capacity = capacity
        self._cursor = base
        self._limit = base + capacity
        self._free: List[Tuple[int, int]] = []  # (offset, size)

    def allocate(self, size: int) -> int:
        if size <= 0:
            raise ValueError("allocation size must be positive")
        for index, (offset, free_size) in enumerate(self._free):
            if free_size >= size:
                if free_size == size:
                    self._free.pop(index)
                else:
                    self._free[index] = (offset + size, free_size - size)
                return offset
        if self._cursor + size > self._limit:
            raise CapacityError("backend full")
        offset = self._cursor
        self._cursor += size
        return offset

    def free(self, offset: int, size: int) -> None:
        self._free.append((offset, size))

    @property
    def bytes_used(self) -> int:
        reclaimed = sum(size for __, size in self._free)
        return self._cursor - reclaimed


class StoreStats:
    """Counters for allocations, promotions, reads, and writes.

    A facade over telemetry counters: each attribute reads through to the
    registry, and ``stats.reads += 1``-style mutation still works. A
    standalone instance (no scope given) keeps its counters in a private
    registry, so tests can construct one in isolation.
    """

    def __init__(self, metrics: Optional[MetricScope] = None):
        self._metrics = (
            metrics if metrics is not None
            else MetricScope.standalone("memory.store")
        )
        self._allocations = self._metrics.counter("allocations")
        self._promotions = self._metrics.counter("promotions")
        self._reads = self._metrics.counter("reads")
        self._writes = self._metrics.counter("writes")

    @property
    def allocations(self) -> int:
        return self._allocations.value

    @allocations.setter
    def allocations(self, value: int) -> None:
        self._allocations._set(value)

    @property
    def promotions(self) -> int:
        return self._promotions.value

    @promotions.setter
    def promotions(self, value: int) -> None:
        self._promotions._set(value)

    @property
    def reads(self) -> int:
        return self._reads.value

    @reads.setter
    def reads(self, value: int) -> None:
        self._reads._set(value)

    @property
    def writes(self) -> int:
        return self._writes.value

    @writes.setter
    def writes(self, value: int) -> None:
        self._writes._set(value)


class SingleLevelStore:
    """Segments over DRAM + (optional) HBM + NVMe with one translation step."""

    def __init__(
        self,
        sim: Simulator,
        dram: DramBackend,
        nvme: NvmeBackend,
        hbm: Optional[DramBackend] = None,
        rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.dram = dram
        self.nvme = nvme
        self.hbm = hbm
        self.table = SegmentTranslationTable()
        self.stats = StoreStats(sim.telemetry.unique_scope("memory.store"))
        self._rng = rng if rng is not None else random.Random(0)
        boot_bytes = BOOT_AREA_BLOCKS * LBA_SIZE
        if nvme.capacity <= boot_bytes:
            raise ConfigurationError("NVMe window smaller than the boot area")
        self._allocators = {
            SegmentLocation.DRAM: _Allocator(dram.capacity),
            SegmentLocation.NVME: _Allocator(nvme.capacity - boot_bytes, boot_bytes),
        }
        if hbm is not None:
            self._allocators[SegmentLocation.HBM] = _Allocator(hbm.capacity)

    # -- placement -----------------------------------------------------------
    def _window_base(self, location: SegmentLocation) -> int:
        return {
            SegmentLocation.DRAM: DRAM_WINDOW_BASE,
            SegmentLocation.HBM: HBM_WINDOW_BASE,
            SegmentLocation.NVME: NVME_WINDOW_BASE,
        }[location]

    def _backend(self, location: SegmentLocation):
        if location is SegmentLocation.DRAM:
            return self.dram
        if location is SegmentLocation.HBM:
            if self.hbm is None:
                raise ConfigurationError("no HBM backend configured")
            return self.hbm
        return self.nvme

    def _place(self, durable: bool, hint: PlacementHint) -> SegmentLocation:
        """Static policy with hints (paper §2.1)."""
        if durable:
            # Durability requires flash: "all durable segments must also be
            # allocated on NVMe addresses".
            return SegmentLocation.NVME
        if hint is PlacementHint.PERFORMANCE_CRITICAL and self.hbm is not None:
            return SegmentLocation.HBM
        if hint is PlacementHint.COLD:
            return SegmentLocation.NVME
        return SegmentLocation.DRAM

    # -- lifecycle -----------------------------------------------------------
    def allocate(
        self,
        size: int,
        durable: bool = False,
        hint: PlacementHint = PlacementHint.NONE,
        oid: Optional[ObjectId] = None,
    ) -> Segment:
        location = self._place(durable, hint)
        offset = self._allocators[location].allocate(size)
        segment = Segment(
            oid=oid if oid is not None else ObjectId.random(self._rng),
            size=size,
            location=location,
            bus_address=self._window_base(location) + offset,
            durable=durable,
        )
        self.table.insert(segment)
        self.stats.allocations += 1
        return segment

    def free(self, oid: ObjectId) -> None:
        segment = self.table.remove(oid)
        offset = segment.bus_address - self._window_base(segment.location)
        self._allocators[segment.location].free(offset, segment.size)

    # -- access (functional) ---------------------------------------------------
    def _resolve(self, oid: ObjectId, offset: int, size: int):
        segment = self.table.lookup(oid)
        if offset < 0 or offset + size > segment.size:
            raise CapacityError(
                f"access [{offset}, {offset + size}) outside segment of "
                f"{segment.size} bytes"
            )
        backend_offset = segment.bus_address - self._window_base(segment.location)
        return segment, self._backend(segment.location), backend_offset + offset

    def read(self, oid: ObjectId, size: Optional[int] = None, offset: int = 0) -> bytes:
        segment = self.table.lookup(oid)
        if size is None:
            size = segment.size - offset
        segment, backend, at = self._resolve(oid, offset, size)
        segment.access_count += 1
        self.stats.reads += 1
        return backend.read(at, size)

    def write(self, oid: ObjectId, data: bytes, offset: int = 0) -> None:
        segment, backend, at = self._resolve(oid, offset, len(data))
        segment.access_count += 1
        self.stats.writes += 1
        backend.write(at, data)

    # -- access (timed processes) ----------------------------------------------
    def timed_read(self, oid: ObjectId, size: Optional[int] = None, offset: int = 0):
        segment = self.table.lookup(oid)
        if size is None:
            size = segment.size - offset
        segment, backend, at = self._resolve(oid, offset, size)
        segment.access_count += 1
        self.stats.reads += 1
        data = yield from backend.timed_read(at, size)
        return data

    def timed_write(self, oid: ObjectId, data: bytes, offset: int = 0):
        segment, backend, at = self._resolve(oid, offset, len(data))
        segment.access_count += 1
        self.stats.writes += 1
        yield from backend.timed_write(at, data)

    # -- promotion (hint-driven tiering) ----------------------------------------
    def promote(self, oid: ObjectId, to_location: SegmentLocation) -> Segment:
        """Move a segment's bytes to another tier and remap it."""
        segment = self.table.lookup(oid)
        if segment.location is to_location:
            return segment
        if segment.durable and to_location is not SegmentLocation.NVME:
            raise ConfigurationError("durable segments must stay on NVMe")
        data = self.read(oid)
        old_location, old_bus = segment.location, segment.bus_address
        new_offset = self._allocators[to_location].allocate(segment.size)
        segment.location = to_location
        segment.bus_address = self._window_base(to_location) + new_offset
        self.write(oid, data)
        old_offset = old_bus - self._window_base(old_location)
        self._allocators[old_location].free(old_offset, segment.size)
        self.stats.promotions += 1
        return segment

    # -- persistence / recovery ---------------------------------------------
    def persist_table(self) -> int:
        """Write the durable-segment table into the boot area; returns bytes."""
        image = self.table.serialize(durable_only=True)
        if len(image) > BOOT_AREA_BLOCKS * LBA_SIZE:
            raise CapacityError("segment table exceeds the boot area")
        self.nvme.write(0, image)
        return len(image)

    def timed_persist_table(self):
        image = self.table.serialize(durable_only=True)
        if len(image) > BOOT_AREA_BLOCKS * LBA_SIZE:
            raise CapacityError("segment table exceeds the boot area")
        yield from self.nvme.timed_write(0, image)
        return len(image)

    @classmethod
    def recover(
        cls,
        sim: Simulator,
        dram: DramBackend,
        nvme: NvmeBackend,
        hbm: Optional[DramBackend] = None,
    ) -> "SingleLevelStore":
        """Rebuild a store after power loss from the persisted boot image.

        Only durable (NVMe-resident) segments survive; DRAM/HBM contents are
        gone, exactly as on real hardware.
        """
        store = cls(sim, dram, nvme, hbm=hbm)
        raw = nvme.read(0, BOOT_AREA_BLOCKS * LBA_SIZE)
        recovered = SegmentTranslationTable.deserialize(raw)
        for segment in recovered:
            store.table.insert(segment)
            offset = segment.bus_address - store._window_base(segment.location)
            # Re-reserve the segment's extent so new allocations avoid it.
            allocator = store._allocators[segment.location]
            if offset + segment.size > allocator._cursor:
                allocator._cursor = offset + segment.size
        return store

    # -- introspection -------------------------------------------------------
    def capacity_bytes(self) -> int:
        """Total addressable capacity: DRAM + HBM + NVMe (paper §2.1)."""
        total = self.dram.capacity + self.nvme.capacity
        if self.hbm is not None:
            total += self.hbm.capacity
        return total

    def segments_at(self, location: SegmentLocation) -> List[Segment]:
        return [s for s in self.table if s.location is location]
