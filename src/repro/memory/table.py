"""The segment translation table: 128-bit id -> (location, bus address).

Paper §2.1: "The segment location translation is done using a segment
translation table that maps a segment id (128 bits) to their bus addresses
and to their location, DRAM or NVMe. ... The segment translation table is
periodically persisted on a pre-selected control/boot NVMe area."
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.common.errors import ConfigurationError
from repro.common.ids import ObjectId
from repro.memory.segments import Segment

_MAGIC = b"HYPRSTT1"


class SegmentTranslationTable:
    """An in-fabric table (conceptually BRAM/URAM-resident) of segments."""

    def __init__(self) -> None:
        self._segments: Dict[ObjectId, Segment] = {}
        self.lookups = 0

    def __len__(self) -> int:
        return len(self._segments)

    def __contains__(self, oid: ObjectId) -> bool:
        return oid in self._segments

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments.values())

    def insert(self, segment: Segment) -> None:
        if segment.oid in self._segments:
            raise ConfigurationError(f"segment {segment.oid} already mapped")
        self._segments[segment.oid] = segment

    def lookup(self, oid: ObjectId) -> Segment:
        """One translation: a single associative lookup (vs a 4-level walk)."""
        self.lookups += 1
        segment = self._segments.get(oid)
        if segment is None:
            raise KeyError(f"unmapped segment {oid}")
        return segment

    def remove(self, oid: ObjectId) -> Segment:
        segment = self._segments.pop(oid, None)
        if segment is None:
            raise KeyError(f"unmapped segment {oid}")
        return segment

    def durable_segments(self) -> List[Segment]:
        return [s for s in self._segments.values() if s.durable]

    # -- persistence ---------------------------------------------------------
    def serialize(self, durable_only: bool = True) -> bytes:
        """Flat record pack: magic, count, then fixed-size records."""
        segments = self.durable_segments() if durable_only else list(self)
        header = _MAGIC + len(segments).to_bytes(8, "big")
        return header + b"".join(s.to_record() for s in segments)

    @classmethod
    def deserialize(cls, raw: bytes) -> "SegmentTranslationTable":
        if len(raw) < 16 or raw[:8] != _MAGIC:
            raise ConfigurationError("bad segment table image")
        count = int.from_bytes(raw[8:16], "big")
        needed = 16 + count * Segment.RECORD_SIZE
        if len(raw) < needed:
            raise ConfigurationError("truncated segment table image")
        table = cls()
        offset = 16
        for _ in range(count):
            record = raw[offset : offset + Segment.RECORD_SIZE]
            table.insert(Segment.from_record(record))
            offset += Segment.RECORD_SIZE
        return table
