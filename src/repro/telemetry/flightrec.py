"""The flight recorder: always-on post-mortem state for chaos debugging.

Chaos runs (E13/E17) used to be debuggable only through five separate
canonical logs — breaker transitions, brownout steps, WAN partition/
heal events, migration reports, SLO alerts — plus whatever spans the
tracer happened to hold. The :class:`FlightRecorder` unifies them:

* a bounded **event journal**: every one of those control-plane
  transitions (and every fired fault) appends one tagged line, in
  simulation order, into a ring of the most recent events;
* a bounded **trace ring**: the most recent *sampled* root spans, fed
  by the tracer as each sampled flow's root finishes;
* **auto-dumps**: when an SLO rule starts firing or a windowed fault
  opens, the recorder snapshots a post-mortem — the trigger, the
  journal tail, and renders of the recent sampled traces — so the
  moments before an incident survive even though the rings keep
  rolling.

Every simulator owns one lazily (``sim.recorder``), the same way it
owns its metrics registry and tracer. Recording is append-only into
``deque(maxlen=...)`` rings and never touches the metrics registry,
RNG streams, or simulated time, so enabling it (it is never off)
changes no canonical artifact bytes. Sources reach the recorder via
``getattr(clock, "recorder", None)`` at construction time: components
built on a bare ``ManualClock`` simply record nothing.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

__all__ = ["FlightRecorder"]

#: Journal lines kept (oldest dropped first).
JOURNAL_LIMIT = 512

#: Sampled root spans kept in the trace ring.
TRACE_LIMIT = 32

#: Post-mortem dumps kept per run.
DUMP_LIMIT = 8

#: Journal lines included in each dump.
DUMP_JOURNAL_TAIL = 64

#: Sampled traces rendered into each dump.
DUMP_TRACE_TAIL = 4


class FlightRecorder:
    """Bounded journal + sampled-trace ring + post-mortem dumps."""

    def __init__(self, clock, journal_limit: int = JOURNAL_LIMIT,
                 trace_limit: int = TRACE_LIMIT,
                 dump_limit: int = DUMP_LIMIT):
        self.clock = clock
        self.journal = deque(maxlen=journal_limit)  # (at, source, line)
        self.traces = deque(maxlen=trace_limit)     # sampled root Spans
        self.dumps: deque = deque(maxlen=dump_limit)  # (trigger, bytes)
        self.recorded = 0

    # -- recording -----------------------------------------------------------
    def record(self, source: str, line: str) -> None:
        """Append one event line from *source* (``breaker``, ``brownout``,
        ``wan``, ``migration``, ``slo``, ``fault``) at the current time."""
        self.recorded += 1
        self.journal.append((self.clock.now, source, line))

    def record_trace(self, root) -> None:
        """Ring-buffer a sampled flow's finished root span."""
        self.traces.append(root)

    # -- canonical views -----------------------------------------------------
    def journal_lines(self) -> List[str]:
        return [
            f"{at:.9f} [{source}] {line}"
            for at, source, line in self.journal
        ]

    def journal_bytes(self) -> bytes:
        """The current journal ring as canonical bytes."""
        return "\n".join(self.journal_lines()).encode()

    # -- post-mortem dumps ---------------------------------------------------
    def dump(self, trigger: str) -> bytes:
        """Snapshot a post-mortem now; returns (and retains) its bytes."""
        lines = [
            f"flight-recorder dump trigger={trigger} at={self.clock.now!r}",
            f"journal (last {DUMP_JOURNAL_TAIL} of {self.recorded}):",
        ]
        tail = self.journal_lines()[-DUMP_JOURNAL_TAIL:]
        lines.extend(tail if tail else ["(empty)"])
        recent = list(self.traces)[-DUMP_TRACE_TAIL:]
        lines.append(f"sampled traces (last {len(recent)}):")
        if not recent:
            lines.append("(none)")
        for root in recent:
            lines.append(f"trace {root.trace_id}:")
            lines.append(root.render())
        snapshot = "\n".join(lines).encode()
        self.dumps.append((trigger, snapshot))
        return snapshot

    def last_dump(self) -> Optional[bytes]:
        """The most recent post-mortem snapshot, or ``None``."""
        return self.dumps[-1][1] if self.dumps else None

    def dump_triggers(self) -> Tuple[str, ...]:
        return tuple(trigger for trigger, __ in self.dumps)

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(journal={len(self.journal)}, "
            f"traces={len(self.traces)}, dumps={len(self.dumps)})"
        )
