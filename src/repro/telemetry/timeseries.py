"""Clock-driven metric sampling into ring-buffered time series.

End-of-run totals say *what* happened; a time series says *when*. The
:class:`Sampler` snapshots watched registry metrics at a fixed simulated
-time period:

* a counter or gauge at path ``p`` produces one series named ``p``
  holding its raw value over time (``Series.rate`` turns a counter
  series into a per-second rate);
* a histogram at path ``p`` produces a cumulative ``p.count`` series
  plus *interval* series ``p.mean`` / ``p.max`` / ``p.p99`` computed
  over only the samples observed since the previous tick (via a
  cursor, so sampling stays O(new samples)). Ticks with no fresh
  samples append no interval points — a silent histogram produces a
  gap, not a misleading zero.

Series are ring buffers (the newest ``capacity`` points), and every
windowed aggregation (``rate``, ``mean``, ``max``, ``quantile``) reads
the points inside a trailing simulated-time window. All of it follows
the determinism contract: sampling runs on the simulated clock, and
``snapshot_bytes()`` renders every series canonically.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)

__all__ = ["Series", "Sampler"]

#: One sampled point: (simulated time, value).
Point = Tuple[float, float]


class Series:
    """A ring buffer of ``(time, value)`` points for one statistic."""

    __slots__ = ("name", "capacity", "_points")

    def __init__(self, name: str, capacity: int = 1024):
        if capacity < 1:
            raise ConfigurationError(
                f"series {name} needs a positive capacity"
            )
        self.name = name
        self.capacity = capacity
        self._points: Deque[Point] = deque(maxlen=capacity)

    # -- recording -----------------------------------------------------------
    def append(self, when: float, value: float) -> None:
        """Record (*when*, *value*), evicting the oldest point when full."""
        if self._points and when < self._points[-1][0]:
            raise ConfigurationError(
                f"series {self.name}: time went backwards "
                f"({when!r} < {self._points[-1][0]!r})"
            )
        self._points.append((when, float(value)))

    # -- reading -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> Tuple[Point, ...]:
        """All retained points, oldest first."""
        return tuple(self._points)

    @property
    def last(self) -> Optional[Point]:
        """The most recent point, or ``None`` when empty."""
        return self._points[-1] if self._points else None

    def window(self, duration: Optional[float] = None,
               now: Optional[float] = None) -> List[Point]:
        """Points inside the trailing ``duration`` ending at ``now``.

        ``duration=None`` means every retained point; ``now`` defaults to
        the newest point's timestamp.
        """
        if not self._points:
            return []
        if duration is None:
            return list(self._points)
        end = self._points[-1][0] if now is None else now
        start = end - duration
        return [(t, v) for t, v in self._points if start <= t <= end]

    # -- windowed aggregation ------------------------------------------------
    def rate(self, duration: Optional[float] = None,
             now: Optional[float] = None) -> float:
        """Per-second increase across the window (counter series slope)."""
        points = self.window(duration, now)
        if len(points) < 2:
            return 0.0
        (t0, v0), (t1, v1) = points[0], points[-1]
        return (v1 - v0) / (t1 - t0) if t1 > t0 else 0.0

    def mean(self, duration: Optional[float] = None,
             now: Optional[float] = None) -> float:
        """Mean of the values in the window (see :meth:`window`)."""
        points = self.window(duration, now)
        if not points:
            return 0.0
        return sum(v for __, v in points) / len(points)

    def max(self, duration: Optional[float] = None,
            now: Optional[float] = None) -> float:
        """Largest value in the window (see :meth:`window`)."""
        points = self.window(duration, now)
        return max((v for __, v in points), default=0.0)

    def quantile(self, fraction: float, duration: Optional[float] = None,
                 now: Optional[float] = None) -> float:
        """Interpolated quantile (0..1) of the window's values."""
        return percentile([v for __, v in self.window(duration, now)],
                          fraction)

    def snapshot_line(self) -> str:
        """One canonical line summarizing the series for snapshots."""
        rendered = " ".join(f"{t!r}:{v!r}" for t, v in self._points)
        return f"series {self.name} n={len(self._points)} {rendered}".rstrip()

    def __repr__(self) -> str:
        return f"Series({self.name}, n={len(self._points)})"


#: Histogram interval statistics a sampler derives per tick.
_INTERVAL_STATS = ("mean", "max", "p99")


class Sampler:
    """Periodically snapshots watched metrics into :class:`Series`.

    Works against any clock exposing ``now`` (a ``Simulator``, a
    ``ManualClock``): call :meth:`sample` yourself, or let :meth:`run`
    drive a workload process with a sampling side-process on the same
    simulator. ``on_sample`` hooks (the SLO monitor) fire after each
    tick with the tick's timestamp.
    """

    def __init__(self, registry: MetricsRegistry, clock,
                 period: float = 1e-3, capacity: int = 1024):
        if period <= 0:
            raise ConfigurationError("sampler period must be positive")
        self.registry = registry
        self.clock = clock
        self.period = period
        self.capacity = capacity
        self.ticks = 0
        self.on_sample: List[Callable[[float], None]] = []
        self._watched: List[str] = []
        self._prefixes: List[str] = []
        self._series: Dict[str, Series] = {}
        self._cursors: Dict[str, int] = {}

    # -- selection -----------------------------------------------------------
    def watch(self, path: str) -> "Sampler":
        """Sample the metric at exactly ``path`` (resolved at each tick,
        so watching before the component registers is fine)."""
        if path not in self._watched:
            self._watched.append(path)
        return self

    def watch_prefix(self, prefix: str) -> "Sampler":
        """Sample every metric under ``prefix`` (re-expanded each tick)."""
        if prefix not in self._prefixes:
            self._prefixes.append(prefix)
        return self

    def _resolved_paths(self) -> List[str]:
        paths = set(self._watched)
        for prefix in self._prefixes:
            paths.update(self.registry.paths(prefix))
        return sorted(paths)

    # -- series access -------------------------------------------------------
    def _series_for(self, name: str) -> Series:
        series = self._series.get(name)
        if series is None:
            series = Series(name, self.capacity)
            self._series[name] = series
        return series

    def series(self, name: str) -> Optional[Series]:
        """The recorded series for *name*, or ``None`` if never watched."""
        return self._series.get(name)

    def names(self) -> List[str]:
        """Names of all watched series, sorted."""
        return sorted(self._series)

    # -- sampling ------------------------------------------------------------
    def sample(self) -> int:
        """Take one snapshot at the clock's current time.

        Returns the number of points appended across all series.
        """
        now = self.clock.now
        self.ticks += 1
        appended = 0
        for path in self._resolved_paths():
            metric = self.registry.get(path)
            if metric is None:
                continue
            if isinstance(metric, (Counter, Gauge)):
                self._series_for(path).append(now, metric.value)
                appended += 1
            elif isinstance(metric, Histogram):
                self._series_for(f"{path}.count").append(now, metric.count)
                appended += 1
                cursor = self._cursors.get(path, 0)
                fresh = metric.samples_since(cursor)
                self._cursors[path] = metric.count
                if fresh:
                    stats = {
                        "mean": sum(fresh) / len(fresh),
                        "max": max(fresh),
                        "p99": percentile(fresh, 0.99),
                    }
                    for stat in _INTERVAL_STATS:
                        self._series_for(f"{path}.{stat}").append(
                            now, stats[stat]
                        )
                        appended += 1
        for hook in self.on_sample:
            hook(now)
        return appended

    # -- simulator integration -----------------------------------------------
    def pump(self, sim, until):
        """A sampling process: tick every period until ``until`` triggers."""
        while not until.triggered:
            yield sim.timeout(self.period)
            self.sample()

    def run(self, sim, generator):
        """Run ``generator`` as a process with this sampler ticking beside
        it; returns the process value (like ``sim.run_process``)."""
        process = sim.process(generator)
        sim.process(self.pump(sim, process))
        sim.run()
        if not process.triggered:
            raise RuntimeError("process did not finish (deadlock?)")
        if not process._ok:
            raise process._value
        return process._value

    # -- canonical output ----------------------------------------------------
    def snapshot_bytes(self) -> bytes:
        """Every series as canonical bytes (same seed => same bytes)."""
        lines = [self._series[name].snapshot_line() for name in self.names()]
        return "\n".join(lines).encode()
