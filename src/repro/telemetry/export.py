"""Exposition formats: Prometheus text and Chrome trace-event JSON.

The registry's ``snapshot_bytes()`` is canonical but private to this
repo; real observability stacks speak standard formats. This module
renders the same state in two of them:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` families, cumulative ``_bucket{le=...}``
  series for histograms). Every sample carries the exact registry path
  as a ``path`` label, so nothing is lost to metric-name sanitization.
* :func:`chrome_trace_json` — the span tracer as Chrome trace-event
  JSON ("Trace Event Format", complete ``"ph": "X"`` events), loadable
  in ``chrome://tracing`` and https://ui.perfetto.dev.

Both renderings follow the determinism contract: output order is the
sorted-path order of ``snapshot_bytes()`` (depth-first root order for
spans), floats render via ``repr``/shortest-round-trip, so the same
seeded run produces byte-identical exports.

:func:`parse_prometheus_text` is the matching minimal parser — enough
to round-trip this module's own output (and any plain counter/gauge/
histogram exposition) back into families and samples for tests and
artifact diffing.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracing import Span, Tracer

__all__ = [
    "prometheus_text",
    "parse_prometheus_text",
    "PromFamily",
    "PromSample",
    "trace_events",
    "chrome_trace_json",
]

_UNSAFE = re.compile(r"[^a-zA-Z0-9_]")


def _family_names(paths: List[str], prefix: str) -> Dict[str, str]:
    """Deterministic path -> Prometheus family name, collision-free.

    ``dpu0.net.port0.rx_frames`` becomes ``repro_dpu0_net_port0_rx_frames``;
    two paths that sanitize identically (``link#1`` vs ``link_1``) get
    ``_2``, ``_3`` suffixes in sorted-path order.
    """
    names: Dict[str, str] = {}
    used: Dict[str, int] = {}
    for path in paths:
        base = prefix + _UNSAFE.sub("_", path)
        seen = used.get(base, 0)
        used[base] = seen + 1
        names[path] = base if seen == 0 else f"{base}_{seen + 1}"
    return names


def _number(value: float) -> str:
    """Render a sample value: integers bare, floats via repr."""
    if isinstance(value, int):
        return str(value)
    return repr(value)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def prometheus_text(registry: MetricsRegistry, prefix: str = "",
                    name_prefix: str = "repro_") -> str:
    """The registry in the Prometheus text exposition format.

    ``prefix`` restricts to one component subtree (same semantics as
    ``snapshot_bytes``); ``name_prefix`` namespaces the generated family
    names. Families appear in sorted-path order; histogram buckets are
    cumulative with a closing ``le="+Inf"`` as the format requires.
    """
    paths = registry.paths(prefix)
    names = _family_names(paths, name_prefix)
    lines: List[str] = []
    for path in paths:
        metric = registry.get(path)
        name = names[path]
        label = f'path="{_escape_label(path)}"'
        lines.append(f"# HELP {name} registry path {path}")
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{{{label}}} {metric.value}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{{{label}}} {_number(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in metric.bucket_counts():
                cumulative += count
                le = "+Inf" if bound is None else repr(bound)
                lines.append(
                    f'{name}_bucket{{{label},le="{le}"}} {cumulative}'
                )
            lines.append(f"{name}_sum{{{label}}} {_number(metric.sum)}")
            lines.append(f"{name}_count{{{label}}} {metric.count}")
        else:  # pragma: no cover - no other metric kinds exist
            raise TypeError(f"cannot expose metric kind {metric!r}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- minimal parser (round-trip tests, artifact diffing) ---------------------

#: One parsed sample: (sample name, labels, numeric value).
PromSample = Tuple[str, Dict[str, str], float]


class PromFamily:
    """One ``# TYPE`` family: its type, help text, and samples."""

    def __init__(self, name: str, kind: str = "untyped", help: str = ""):
        self.name = name
        self.kind = kind
        self.help = help
        self.samples: List[PromSample] = []

    def __repr__(self) -> str:
        return (
            f"PromFamily({self.name}, {self.kind}, "
            f"{len(self.samples)} samples)"
        )


_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def parse_prometheus_text(text: str) -> Dict[str, PromFamily]:
    """Parse exposition text into ``{family name: PromFamily}``.

    Minimal by design: it understands ``# HELP``, ``# TYPE``, and sample
    lines with optional labels — exactly what :func:`prometheus_text`
    emits. Histogram ``_bucket``/``_sum``/``_count`` samples attach to
    their base family. Malformed sample lines raise ``ValueError``.
    """
    families: Dict[str, PromFamily] = {}

    def family_for(sample_name: str) -> PromFamily:
        for suffix in ("", "_bucket", "_sum", "_count"):
            if suffix and not sample_name.endswith(suffix):
                continue
            base = sample_name[: len(sample_name) - len(suffix)] \
                if suffix else sample_name
            if base in families:
                return families[base]
        return families.setdefault(sample_name, PromFamily(sample_name))

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            __, __, rest = line.partition("# HELP ")
            name, __, help_text = rest.partition(" ")
            families.setdefault(name, PromFamily(name)).help = help_text
        elif line.startswith("# TYPE "):
            __, __, rest = line.partition("# TYPE ")
            name, __, kind = rest.partition(" ")
            families.setdefault(name, PromFamily(name)).kind = kind.strip()
        elif line.startswith("#"):
            continue
        else:
            match = _SAMPLE.match(line)
            if match is None:
                raise ValueError(f"malformed sample line: {line!r}")
            name, raw_labels, raw_value = match.groups()
            labels = {
                key: _unescape_label(value)
                for key, value in _LABEL.findall(raw_labels or "")
            }
            family_for(name).samples.append((name, labels, float(raw_value)))
    return families


# -- Chrome trace events -----------------------------------------------------

def trace_events(tracer: Tracer, pid: int = 1,
                 process_name: str = "hyperion-sim") -> List[Dict[str, Any]]:
    """The tracer's span trees as trace-event dicts.

    Every span becomes one complete event (``"ph": "X"``) with
    microsecond ``ts``/``dur`` on a single thread track, so the viewer
    reconstructs nesting from time containment exactly as the tracer
    built it from the simulated clock. ``cat`` carries the substrate,
    ``args`` the span attributes plus the tree depth.
    """
    events: List[Dict[str, Any]] = [
        {
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": process_name},
        },
        {
            "ph": "M", "name": "thread_name", "pid": pid, "tid": 1,
            "args": {"name": "simulated-datapath"},
        },
    ]

    def emit(span: Span, depth: int, parent_end: Optional[float]) -> None:
        args: Dict[str, Any] = {
            key: str(value) for key, value in sorted(span.attrs.items())
        }
        args["depth"] = depth
        start = span.start * 1e6
        end = start + span.duration * 1e6
        # Converting seconds to microseconds rounds parent and child
        # independently, which can push a child's end a few ulps past its
        # parent's; clamp so viewers reconstruct the tracer's exact tree.
        if parent_end is not None and end > parent_end:
            end = parent_end
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.substrate or "sim",
            "ts": start,
            "dur": end - start,
            "pid": pid,
            "tid": 1,
            "args": args,
        })
        for child in span.children:
            emit(child, depth + 1, end)

    for root in tracer.roots:
        emit(root, 0, None)
    return events


def chrome_trace_json(tracer: Tracer, pid: int = 1,
                      process_name: str = "hyperion-sim",
                      indent: Optional[int] = None) -> str:
    """The tracer serialized as a ``chrome://tracing``/Perfetto JSON blob.

    Canonical: keys sorted, events in depth-first root order, floats via
    shortest-round-trip — same seed, same bytes.
    """
    payload = {
        "displayTimeUnit": "ns",
        "traceEvents": trace_events(tracer, pid, process_name),
    }
    return json.dumps(payload, sort_keys=True, indent=indent)
