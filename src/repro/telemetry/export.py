"""Exposition formats: Prometheus text and Chrome trace-event JSON.

The registry's ``snapshot_bytes()`` is canonical but private to this
repo; real observability stacks speak standard formats. This module
renders the same state in two of them:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` families, cumulative ``_bucket{le=...}``
  series for histograms). Every sample carries the exact registry path
  as a ``path`` label, so nothing is lost to metric-name sanitization.
* :func:`chrome_trace_json` — the span tracer as Chrome trace-event
  JSON ("Trace Event Format", complete ``"ph": "X"`` events), loadable
  in ``chrome://tracing`` and https://ui.perfetto.dev.

Both renderings follow the determinism contract: output order is the
sorted-path order of ``snapshot_bytes()`` (depth-first root order for
spans), floats render via ``repr``/shortest-round-trip, so the same
seeded run produces byte-identical exports.

:func:`parse_prometheus_text` is the matching minimal parser — enough
to round-trip this module's own output (and any plain counter/gauge/
histogram exposition) back into families and samples for tests and
artifact diffing.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracing import Span, Tracer

__all__ = [
    "prometheus_text",
    "parse_prometheus_text",
    "PromFamily",
    "PromSample",
    "trace_events",
    "chrome_trace_json",
    "distributed_trace_events",
    "distributed_chrome_trace_json",
]

_UNSAFE = re.compile(r"[^a-zA-Z0-9_]")


def _family_names(paths: List[str], prefix: str) -> Dict[str, str]:
    """Deterministic path -> Prometheus family name, collision-free.

    ``dpu0.net.port0.rx_frames`` becomes ``repro_dpu0_net_port0_rx_frames``;
    two paths that sanitize identically (``link#1`` vs ``link_1``) get
    ``_2``, ``_3`` suffixes in sorted-path order.
    """
    names: Dict[str, str] = {}
    used: Dict[str, int] = {}
    for path in paths:
        base = prefix + _UNSAFE.sub("_", path)
        seen = used.get(base, 0)
        used[base] = seen + 1
        names[path] = base if seen == 0 else f"{base}_{seen + 1}"
    return names


def _number(value: float) -> str:
    """Render a sample value: integers bare, floats via repr."""
    if isinstance(value, int):
        return str(value)
    return repr(value)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def prometheus_text(registry: MetricsRegistry, prefix: str = "",
                    name_prefix: str = "repro_") -> str:
    """The registry in the Prometheus text exposition format.

    ``prefix`` restricts to one component subtree (same semantics as
    ``snapshot_bytes``); ``name_prefix`` namespaces the generated family
    names. Families appear in sorted-path order; histogram buckets are
    cumulative with a closing ``le="+Inf"`` as the format requires.
    """
    paths = registry.paths(prefix)
    names = _family_names(paths, name_prefix)
    lines: List[str] = []
    for path in paths:
        metric = registry.get(path)
        name = names[path]
        label = f'path="{_escape_label(path)}"'
        lines.append(f"# HELP {name} registry path {path}")
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{{{label}}} {metric.value}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{{{label}}} {_number(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {name} histogram")
            exemplars = metric.exemplars()
            cumulative = 0
            for index, (bound, count) in enumerate(metric.bucket_counts()):
                cumulative += count
                le = "+Inf" if bound is None else repr(bound)
                sample = f'{name}_bucket{{{label},le="{le}"}} {cumulative}'
                captured = exemplars.get(index)
                if captured is not None:
                    # OpenMetrics exemplar syntax: the trace that last
                    # landed in this bucket, linking the tail back to a
                    # concrete sampled request.
                    value, trace_id = captured
                    sample += (
                        f' # {{trace_id="{_escape_label(trace_id)}"}} '
                        f"{repr(value)}"
                    )
                lines.append(sample)
            lines.append(f"{name}_sum{{{label}}} {_number(metric.sum)}")
            lines.append(f"{name}_count{{{label}}} {metric.count}")
        else:  # pragma: no cover - no other metric kinds exist
            raise TypeError(f"cannot expose metric kind {metric!r}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- minimal parser (round-trip tests, artifact diffing) ---------------------

#: One parsed sample: (sample name, labels, numeric value).
PromSample = Tuple[str, Dict[str, str], float]


class PromFamily:
    """One ``# TYPE`` family: its type, help text, and samples."""

    def __init__(self, name: str, kind: str = "untyped", help: str = ""):
        self.name = name
        self.kind = kind
        self.help = help
        self.samples: List[PromSample] = []
        #: sample name -> (exemplar labels, exemplar value) for samples
        #: carrying an OpenMetrics ``# {...} value`` exemplar suffix.
        self.exemplars: Dict[str, Tuple[Dict[str, str], float]] = {}

    def __repr__(self) -> str:
        return (
            f"PromFamily({self.name}, {self.kind}, "
            f"{len(self.samples)} samples)"
        )


_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_EXEMPLAR = re.compile(r"^\{(.*)\}\s+(\S+)$")


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def parse_prometheus_text(text: str) -> Dict[str, PromFamily]:
    """Parse exposition text into ``{family name: PromFamily}``.

    Minimal by design: it understands ``# HELP``, ``# TYPE``, and sample
    lines with optional labels — exactly what :func:`prometheus_text`
    emits. Histogram ``_bucket``/``_sum``/``_count`` samples attach to
    their base family. Malformed sample lines raise ``ValueError``.
    """
    families: Dict[str, PromFamily] = {}

    def family_for(sample_name: str) -> PromFamily:
        for suffix in ("", "_bucket", "_sum", "_count"):
            if suffix and not sample_name.endswith(suffix):
                continue
            base = sample_name[: len(sample_name) - len(suffix)] \
                if suffix else sample_name
            if base in families:
                return families[base]
        return families.setdefault(sample_name, PromFamily(sample_name))

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            __, __, rest = line.partition("# HELP ")
            name, __, help_text = rest.partition(" ")
            families.setdefault(name, PromFamily(name)).help = help_text
        elif line.startswith("# TYPE "):
            __, __, rest = line.partition("# TYPE ")
            name, __, kind = rest.partition(" ")
            families.setdefault(name, PromFamily(name)).kind = kind.strip()
        elif line.startswith("#"):
            continue
        else:
            # An OpenMetrics exemplar rides after the sample value as
            # ``... # {labels} value``; split it off before matching.
            sample_part, __, exemplar_part = line.partition(" # ")
            match = _SAMPLE.match(sample_part)
            if match is None:
                raise ValueError(f"malformed sample line: {line!r}")
            name, raw_labels, raw_value = match.groups()
            labels = {
                key: _unescape_label(value)
                for key, value in _LABEL.findall(raw_labels or "")
            }
            family = family_for(name)
            family.samples.append((name, labels, float(raw_value)))
            if exemplar_part:
                ex_match = _EXEMPLAR.match(exemplar_part)
                if ex_match is None:
                    raise ValueError(f"malformed exemplar: {line!r}")
                ex_labels = {
                    key: _unescape_label(value)
                    for key, value in _LABEL.findall(ex_match.group(1))
                }
                key = labels.get("le", "")
                family.exemplars[f"{name}{{le={key}}}"] = (
                    ex_labels, float(ex_match.group(2))
                )
    return families


# -- Chrome trace events -----------------------------------------------------

def trace_events(tracer: Tracer, pid: int = 1,
                 process_name: str = "hyperion-sim") -> List[Dict[str, Any]]:
    """The tracer's span trees as trace-event dicts.

    Every span becomes one complete event (``"ph": "X"``) with
    microsecond ``ts``/``dur`` on a single thread track, so the viewer
    reconstructs nesting from time containment exactly as the tracer
    built it from the simulated clock. ``cat`` carries the substrate,
    ``args`` the span attributes plus the tree depth.
    """
    events: List[Dict[str, Any]] = [
        {
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": process_name},
        },
        {
            "ph": "M", "name": "thread_name", "pid": pid, "tid": 1,
            "args": {"name": "simulated-datapath"},
        },
    ]

    def emit(span: Span, depth: int, parent_end: Optional[float]) -> None:
        args: Dict[str, Any] = {
            key: str(value) for key, value in sorted(span.attrs.items())
        }
        args["depth"] = depth
        start = span.start * 1e6
        end = start + span.duration * 1e6
        # Converting seconds to microseconds rounds parent and child
        # independently, which can push a child's end a few ulps past its
        # parent's; clamp so viewers reconstruct the tracer's exact tree.
        if parent_end is not None and end > parent_end:
            end = parent_end
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.substrate or "sim",
            "ts": start,
            "dur": end - start,
            "pid": pid,
            "tid": 1,
            "args": args,
        })
        for child in span.children:
            emit(child, depth + 1, end)

    for root in tracer.roots:
        emit(root, 0, None)
    return events


def chrome_trace_json(tracer: Tracer, pid: int = 1,
                      process_name: str = "hyperion-sim",
                      indent: Optional[int] = None) -> str:
    """The tracer serialized as a ``chrome://tracing``/Perfetto JSON blob.

    Canonical: keys sorted, events in depth-first root order, floats via
    shortest-round-trip — same seed, same bytes.
    """
    payload = {
        "displayTimeUnit": "ns",
        "traceEvents": trace_events(tracer, pid, process_name),
    }
    return json.dumps(payload, sort_keys=True, indent=indent)


# -- distributed (multi-region) Chrome trace events --------------------------

def _span_region(span: Span, default: str) -> str:
    """The span's region: its own ``region`` attr or the nearest
    ancestor's (the client side of a geo trace has none)."""
    node: Optional[Span] = span
    while node is not None:
        region = node.attrs.get("region")
        if region is not None:
            return str(region)
        node = node.parent
    return default


def distributed_trace_events(tracer: Tracer,
                             default_region: str = "client"
                             ) -> List[Dict[str, Any]]:
    """Distributed traces as trace-event dicts, one pid per region.

    Spans are grouped onto per-region process tracks (``region`` span
    attributes, inherited downward; region-less prefixes land on
    ``default_region``), and every cross-region parent/child edge — an
    RPC hop whose ``rpc.handle`` executed in another region than its
    caller — emits a flow-event pair (``"ph": "s"`` at the caller,
    ``"ph": "f"`` at the callee) so viewers draw the causal arrow
    across tracks. Deterministic: pids follow sorted region names,
    flow ids follow depth-first visit order.
    """
    regions: List[str] = []
    seen = set()

    def collect(span: Span, inherited: str) -> None:
        region = str(span.attrs.get("region", inherited))
        if region not in seen:
            seen.add(region)
            regions.append(region)
        for child in span.children:
            collect(child, region)

    for root in tracer.roots:
        collect(root, default_region)
    pids = {region: pid for pid, region in enumerate(sorted(regions), 1)}

    events: List[Dict[str, Any]] = []
    for region in sorted(regions):
        events.append({
            "ph": "M", "name": "process_name", "pid": pids[region],
            "tid": 0, "args": {"name": f"region {region}"},
        })
        events.append({
            "ph": "M", "name": "thread_name", "pid": pids[region],
            "tid": 1, "args": {"name": "simulated-datapath"},
        })

    flow_ids = 0

    def emit(span: Span, depth: int, parent_end: Optional[float],
             inherited: str, parent_pid: Optional[int],
             parent_start: Optional[float]) -> None:
        nonlocal flow_ids
        region = str(span.attrs.get("region", inherited))
        pid = pids[region]
        args: Dict[str, Any] = {
            key: str(value) for key, value in sorted(span.attrs.items())
        }
        args["depth"] = depth
        if span.trace_id:
            args["trace_id"] = span.trace_id
        start = span.start * 1e6
        end = start + span.duration * 1e6
        if parent_end is not None and end > parent_end:
            end = parent_end
        if parent_pid is not None and parent_pid != pid:
            # The hop crossed regions: tie the tracks together.
            flow_ids += 1
            events.append({
                "ph": "s", "id": flow_ids, "name": "rpc-hop", "cat": "flow",
                "pid": parent_pid, "tid": 1, "ts": parent_start,
            })
            events.append({
                "ph": "f", "bp": "e", "id": flow_ids, "name": "rpc-hop",
                "cat": "flow", "pid": pid, "tid": 1, "ts": start,
            })
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.substrate or "sim",
            "ts": start,
            "dur": end - start,
            "pid": pid,
            "tid": 1,
            "args": args,
        })
        for child in span.children:
            emit(child, depth + 1, end, region, pid, start)

    for root in tracer.roots:
        emit(root, 0, None, default_region, None, None)
    return events


def distributed_chrome_trace_json(tracer: Tracer,
                                  default_region: str = "client",
                                  indent: Optional[int] = None) -> str:
    """:func:`distributed_trace_events` as a canonical JSON blob."""
    payload = {
        "displayTimeUnit": "ns",
        "traceEvents": distributed_trace_events(tracer, default_region),
    }
    return json.dumps(payload, sort_keys=True, indent=indent)
