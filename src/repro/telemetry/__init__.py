"""The unified telemetry plane: one metrics registry + span tracing.

The paper's central quantitative claims — predictability (p99/p50 ~= 1,
§2), energy per operation, and reconfiguration timescales — are all
*measurements of the substrate*. This package is the one place those
measurements live:

* a deterministic :class:`MetricsRegistry` of counters, gauges and
  fixed-bucket histograms (with exact quantiles), addressed by
  hierarchical component paths such as ``dpu0.net.port0.rx_frames``;
* a :class:`Tracer` whose :class:`Span` trees nest via the simulated
  clock, so a single KV get renders as NIC -> transport -> NVMe -> PCIe;
* canonical byte snapshots: the same seed produces byte-identical
  telemetry, extending the fault-schedule reproducibility contract
  (``FaultInjector.schedule_bytes``) to every metric in the system.

Every :class:`repro.sim.Simulator` owns a lazily-created registry
(``sim.telemetry``) and tracer (``sim.tracer``); every substrate model
emits into them. The legacy ``*Stats`` dataclasses survive as thin
read-through facades over registry metrics.

On top of the in-process plane sit the export-and-watch layers:

* :mod:`repro.telemetry.export` — Prometheus text exposition of the
  registry and Chrome trace-event JSON of the tracer;
* :mod:`repro.telemetry.timeseries` — a clock-driven :class:`Sampler`
  snapshotting metrics into ring-buffered :class:`Series` with windowed
  aggregation (rate/mean/max/quantile);
* :mod:`repro.telemetry.slo` — declarative :class:`SloRule` objectives
  evaluated on sampler ticks into a deterministic alert log.
"""

from repro.telemetry.export import (
    chrome_trace_json,
    distributed_chrome_trace_json,
    distributed_trace_events,
    parse_prometheus_text,
    prometheus_text,
    trace_events,
)
from repro.telemetry.flightrec import FlightRecorder
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricScope,
    MetricsRegistry,
    percentile,
)
from repro.telemetry.slo import SloAlert, SloMonitor, SloRule
from repro.telemetry.timeseries import Sampler, Series
from repro.telemetry.tracing import NULL_SPAN, Span, TraceContext, Tracer

__all__ = [
    "Metric",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricScope",
    "MetricsRegistry",
    "percentile",
    "Span",
    "TraceContext",
    "Tracer",
    "NULL_SPAN",
    "FlightRecorder",
    "prometheus_text",
    "parse_prometheus_text",
    "chrome_trace_json",
    "trace_events",
    "distributed_trace_events",
    "distributed_chrome_trace_json",
    "Sampler",
    "Series",
    "SloRule",
    "SloAlert",
    "SloMonitor",
]
