"""Counters, gauges, histograms, and the hierarchical metrics registry.

Design rules (the determinism contract):

* Metric paths are dot-separated component paths; the component id a
  substrate uses for fault injection is the same path it uses here, so
  one name addresses both "what can break" and "what was measured".
* Registration is idempotent: asking for the same path twice returns the
  same object; asking with a conflicting type raises.
* ``snapshot_bytes()`` is canonical — paths sorted, floats rendered with
  ``repr`` — so two runs of the same seeded workload are byte-identical.
* Histograms keep their raw samples (this is a simulation, not a prod
  agent), so quantiles are *exact*: linear interpolation at
  ``fraction * (n - 1)``, matching ``statistics.quantiles`` with
  ``method="inclusive"``. The fixed buckets exist for cheap rendering
  and for the canonical snapshot.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from repro.common.errors import ConfigurationError

__all__ = [
    "percentile",
    "Metric",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricScope",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Exact quantile of ``samples`` by linear interpolation.

    The single shared implementation behind every eval report (the two
    private ``_percentile`` copies in ``repro.eval`` used to disagree on
    rounding). Matches ``statistics.quantiles(..., method="inclusive")``:
    the value at rank ``fraction * (len - 1)`` of the sorted samples,
    interpolating between neighbours. Empty input returns 0.0.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


class Metric:
    """Base: a named value owned by (exactly one) registry."""

    kind = "metric"

    def __init__(self, name: str):
        self.name = name

    def snapshot_line(self) -> str:
        """One canonical line for :meth:`MetricsRegistry.snapshot_bytes`."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing integer (frames sent, ops served...)."""

    kind = "counter"

    def __init__(self, name: str):
        super().__init__(name)
        self._value = 0

    @property
    def value(self) -> int:
        """The current count."""
        return self._value

    def inc(self, amount: int = 1) -> int:
        """Add *amount* (>= 0) and return the new count."""
        if amount < 0:
            raise ConfigurationError(f"counter {self.name} cannot decrease")
        self._value += amount
        return self._value

    def _set(self, value: int) -> None:
        """Facade back-door: lets legacy ``stats.field += n`` call sites
        keep working through a property setter. Still monotonic."""
        if value < self._value:
            raise ConfigurationError(f"counter {self.name} cannot decrease")
        self._value = value

    def snapshot_line(self) -> str:
        """One canonical line for :meth:`MetricsRegistry.snapshot_bytes`."""
        return f"counter {self.name} {self._value}"

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge(Metric):
    """A value that can go up and down (queue depth, DRAM pressure)."""

    kind = "gauge"

    def __init__(self, name: str):
        super().__init__(name)
        self._value: float = 0.0

    @property
    def value(self) -> float:
        """The current value."""
        return self._value

    def set(self, value: float) -> float:
        """Replace the value; returns it."""
        self._value = value
        return self._value

    def inc(self, amount: float = 1.0) -> float:
        """Add *amount* and return the new value."""
        self._value += amount
        return self._value

    def dec(self, amount: float = 1.0) -> float:
        """Subtract *amount* and return the new value."""
        self._value -= amount
        return self._value

    def snapshot_line(self) -> str:
        """One canonical line for :meth:`MetricsRegistry.snapshot_bytes`."""
        return f"gauge {self.name} {self._value!r}"

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


#: Default histogram buckets: log-spaced from 1 ns to 10 s — wide enough
#: for every latency this simulation produces (flash programs, ICAP
#: reconfigurations, RPC deadlines).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** exponent for exponent in range(-9, 2)
)


class Histogram(Metric):
    """Fixed-bucket histogram that also keeps raw samples.

    Buckets give the canonical snapshot and the rendered distribution;
    the raw samples give *exact* quantiles (see :func:`percentile`).

    Recording is the hot path (every RPC, NVMe command, and queue
    sojourn observes a latency), so :meth:`observe` is a single list
    append. The bucket counts and the running sum are materialized
    lazily, on first read, from the samples recorded since the last
    materialization — same left-to-right float additions, same
    ``bisect`` binning, so every derived value is *bit-identical* to
    what eager per-observe accounting produced.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name)
        bounds = tuple(buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ConfigurationError(
                f"histogram {name} needs strictly increasing bucket bounds"
            )
        self.bounds = bounds
        #: counts[i] = samples <= bounds[i]; counts[-1] = overflow.
        self._counts = [0] * (len(bounds) + 1)
        self._samples: List[float] = []
        self._sum = 0.0
        # Lazy-materialization cursors: samples[:_binned] are reflected
        # in _counts, samples[:_summed] in _sum.
        self._binned = 0
        self._summed = 0
        #: bucket index -> (value, trace_id): the last traced request
        #: whose sample landed in that bucket (see :meth:`exemplar`).
        self._exemplars: Dict[int, Tuple[float, str]] = {}

    # -- recording -----------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one sample; binning and summing are deferred to reads."""
        self._samples.append(value)

    def exemplar(self, value: float, trace_id: str) -> None:
        """Attach *trace_id* as the exemplar for *value*'s bucket.

        Called by instrumented sites alongside :meth:`observe` when the
        observation belongs to a sampled trace (and the tracer has
        exemplar capture armed), linking a latency bucket back to one
        concrete request that landed in it. Kept out of ``observe``
        itself and out of :meth:`snapshot_line` so the hot path and the
        canonical snapshot bytes are untouched; exemplars surface only
        through :func:`repro.telemetry.prometheus_text` (OpenMetrics
        exemplar syntax) and :meth:`exemplars`.
        """
        self._exemplars[bisect_left(self.bounds, value)] = (value, trace_id)

    def exemplars(self) -> Dict[int, Tuple[float, str]]:
        """Captured exemplars: bucket index -> (value, trace_id)."""
        return dict(self._exemplars)

    # -- lazy materialization ------------------------------------------------
    def _materialized_sum(self) -> float:
        samples = self._samples
        fresh = len(samples)
        if self._summed != fresh:
            # Sequential left-to-right additions from the previous
            # partial sum: the exact float result of eager ``+=``.
            total = self._sum
            for value in samples[self._summed:]:
                total += value
            self._sum = total
            self._summed = fresh
        return self._sum

    def _materialized_counts(self) -> List[int]:
        samples = self._samples
        fresh = len(samples)
        if self._binned != fresh:
            counts = self._counts
            bounds = self.bounds
            for value in samples[self._binned:]:
                counts[bisect_left(bounds, value)] += 1
            self._binned = fresh
        return self._counts

    # -- reading -------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of samples observed."""
        return len(self._samples)

    @property
    def sum(self) -> float:
        """Sum of all observed samples."""
        return self._materialized_sum()

    @property
    def samples(self) -> Tuple[float, ...]:
        """The raw samples, in observation order."""
        return tuple(self._samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return self._materialized_sum() / len(self._samples)

    @property
    def pstdev(self) -> float:
        """Population standard deviation of the samples."""
        if not self._samples:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((s - mean) ** 2 for s in self._samples) / len(self._samples)
        )

    @property
    def min(self) -> float:
        """Smallest observed sample (0.0 when empty)."""
        return min(self._samples) if self._samples else 0.0

    @property
    def max(self) -> float:
        """Largest observed sample (0.0 when empty)."""
        return max(self._samples) if self._samples else 0.0

    def quantile(self, fraction: float) -> float:
        """Exact quantile over every observed sample.

        Raises :class:`ValueError` (naming this histogram's metric path)
        when nothing has been observed yet: a quantile of an empty sample
        set is a question with no answer, and silently returning 0.0 hid
        wiring bugs where an experiment summarized the wrong histogram.
        """
        if not self._samples:
            raise ValueError(
                f"histogram {self.name}: quantile({fraction}) of an empty "
                "sample set (no observations recorded)"
            )
        return percentile(self._samples, fraction)

    def samples_since(self, index: int) -> Tuple[float, ...]:
        """Samples observed at or after insertion ``index`` (cursor reads).

        The time-series :class:`~repro.telemetry.timeseries.Sampler` keeps
        a per-histogram cursor and asks only for the fresh tail at each
        tick, so periodic sampling stays O(new samples), not O(history).
        """
        return tuple(self._samples[index:])

    def bucket_counts(self) -> List[Tuple[Optional[float], int]]:
        """(upper bound, count) pairs; the last bound is None (overflow)."""
        bounds: List[Optional[float]] = list(self.bounds)
        bounds.append(None)
        return list(zip(bounds, self._materialized_counts()))

    def snapshot_line(self) -> str:
        """One canonical line for :meth:`MetricsRegistry.snapshot_bytes`."""
        quantiles = " ".join(
            f"p{int(f * 100):02d}={percentile(self._samples, f)!r}"
            for f in (0.50, 0.90, 0.99)
        )
        buckets = ",".join(str(c) for c in self._materialized_counts())
        return (
            f"histogram {self.name} count={self.count} "
            f"sum={self._materialized_sum()!r} "
            f"min={self.min!r} max={self.max!r} {quantiles} "
            f"buckets={buckets}"
        )

    def __repr__(self) -> str:
        return f"Histogram({self.name}, count={self.count})"


class MetricScope:
    """A registry view bound to one component path prefix.

    A substrate model holds a scope (``dpu0.net.port0``) and registers
    relative names (``rx_frames``) under it. Components that learn their
    real identity late (``attach_faults`` renames a link from ``link#2``
    to ``client.uplink``) call :meth:`rename` — the metrics move, the
    object references the component holds stay valid.
    """

    def __init__(self, registry: "MetricsRegistry", prefix: str):
        self.registry = registry
        self.prefix = prefix

    @property
    def prefix(self) -> str:
        return self._prefix

    @prefix.setter
    def prefix(self, value: str) -> None:
        # The dotted-path head is built once per (re)naming, not per
        # metric registration — path strings are assembled with a single
        # concatenation in :meth:`_path`.
        self._prefix = value
        self._dot = value + "." if value else ""

    @staticmethod
    def standalone(prefix: str) -> "MetricScope":
        """A scope over a fresh private registry, for components built
        without a simulator (a bare LsmTree, a ReadStats in a test)."""
        return MetricsRegistry().scope(prefix)

    def _path(self, name: str) -> str:
        return self._dot + name

    def counter(self, name: str) -> Counter:
        """The counter at ``prefix.name`` (created on first use)."""
        return self.registry.counter(self._path(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge at ``prefix.name`` (created on first use)."""
        return self.registry.gauge(self._path(name))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram at ``prefix.name`` (created on first use)."""
        return self.registry.histogram(self._path(name), buckets)

    def scope(self, sub: str) -> "MetricScope":
        """A child scope at ``prefix.sub``, over the same registry."""
        return MetricScope(self.registry, self._path(sub))

    def rename(self, new_prefix: str) -> "MetricScope":
        """Move this scope's metrics under *new_prefix* (see class docs)."""
        self.prefix = self.registry.rename(self.prefix, new_prefix)
        return self


class MetricsRegistry:
    """All metrics of one simulated system, addressed by path.

    One registry per :class:`~repro.sim.Simulator` (``sim.telemetry``),
    created lazily; a fresh simulator therefore always snapshots from a
    clean slate, which is what makes same-seed runs byte-identical.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._claimed: Dict[str, int] = {}  # base prefix -> instances seen

    # -- registration --------------------------------------------------------
    def _get_or_create(self, path: str, cls: Type[Metric], *args) -> Metric:
        if not path:
            raise ConfigurationError("metric path cannot be empty")
        existing = self._metrics.get(path)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"{path} already registered as {existing.kind}"
                )
            return existing
        metric = cls(path, *args)
        self._metrics[path] = metric
        return metric

    def counter(self, path: str) -> Counter:
        """The counter at *path* (created on first use)."""
        return self._get_or_create(path, Counter)

    def gauge(self, path: str) -> Gauge:
        """The gauge at *path* (created on first use)."""
        return self._get_or_create(path, Gauge)

    def histogram(
        self, path: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram at *path* (created on first use)."""
        return self._get_or_create(path, Histogram)

    def scope(self, prefix: str) -> MetricScope:
        """A :class:`MetricScope` prefixing every name with *prefix*."""
        return MetricScope(self, prefix)

    def unique_scope(self, base: str) -> MetricScope:
        """A scope whose prefix is unique in this registry.

        The first instance of a component class claims the bare name
        (``link``); later ones get ``link#1``, ``link#2``... Claiming is
        in construction order, which a deterministic simulation makes
        reproducible.
        """
        seen = self._claimed.get(base, 0)
        self._claimed[base] = seen + 1
        return self.scope(base if seen == 0 else f"{base}#{seen}")

    def rename(self, old_prefix: str, new_prefix: str) -> str:
        """Move every metric under ``old_prefix`` to ``new_prefix``.

        If the target prefix is already populated (two links both
        attached as ``client.uplink``), the move is uniquified the same
        way :meth:`unique_scope` is. Returns the prefix actually used.
        """
        if new_prefix == old_prefix:
            return new_prefix
        seen = self._claimed.get(new_prefix, 0)
        self._claimed[new_prefix] = seen + 1
        target = new_prefix if seen == 0 else f"{new_prefix}#{seen}"
        moves = [
            path for path in self._metrics
            if path == old_prefix or path.startswith(old_prefix + ".")
        ]
        for path in moves:
            metric = self._metrics.pop(path)
            new_path = target + path[len(old_prefix):]
            metric.name = new_path
            self._metrics[new_path] = metric
        return target

    # -- reading -------------------------------------------------------------
    def get(self, path: str) -> Optional[Metric]:
        """The metric registered at *path*, or ``None``."""
        return self._metrics.get(path)

    def __contains__(self, path: str) -> bool:
        return path in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def paths(self, prefix: str = "") -> List[str]:
        """All registered paths under *prefix* (all of them when empty), sorted."""
        return sorted(
            path for path in self._metrics
            if not prefix or path == prefix or path.startswith(prefix + ".")
        )

    def walk(self, prefix: str = "") -> Iterator[Metric]:
        """The metrics under *prefix*, in path order."""
        for path in self.paths(prefix):
            yield self._metrics[path]

    # -- canonical output ----------------------------------------------------
    def snapshot_bytes(self, prefix: str = "") -> bytes:
        """The whole registry as canonical bytes.

        Same seed => byte-identical output, the same contract
        ``FaultInjector.schedule_bytes`` gives for fault schedules.
        """
        lines = [metric.snapshot_line() for metric in self.walk(prefix)]
        return "\n".join(lines).encode()

    def render(self, prefix: str = "") -> str:
        """Human-readable metric tree, indented by path depth."""
        lines: List[str] = []
        previous: Tuple[str, ...] = ()
        for path in self.paths(prefix):
            parts = tuple(path.split("."))
            # Print any new ancestor groups this path introduces.
            common = 0
            for a, b in zip(parts[:-1], previous):
                if a != b:
                    break
                common += 1
            for depth in range(common, len(parts) - 1):
                lines.append("  " * depth + parts[depth] + "/")
            metric = self._metrics[path]
            indent = "  " * (len(parts) - 1)
            if isinstance(metric, Counter):
                rendered = str(metric.value)
            elif isinstance(metric, Gauge):
                rendered = f"{metric.value:g}"
            else:
                hist = metric
                assert isinstance(hist, Histogram)
                if hist.count:
                    rendered = (
                        f"count={hist.count} mean={hist.mean:.3g} "
                        f"p50={hist.quantile(0.5):.3g} "
                        f"p99={hist.quantile(0.99):.3g}"
                    )
                else:
                    rendered = "count=0"
            lines.append(f"{indent}{parts[-1]} = {rendered}")
            previous = parts[:-1]
        return "\n".join(lines)
