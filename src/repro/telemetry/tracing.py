"""Causal cross-substrate span tracing on the simulated clock.

A :class:`Span` is one timed operation on one substrate (an RPC call, a
link transmission, an NVMe command, a PCIe transfer). Spans belong to a
:class:`TraceContext` — one logical flow (a request, a replication
batch, a shard migration) with a deterministic ``trace_id`` and its own
open-span stack — so concurrent traced flows build separate, intact
trees instead of interleaving on a shared stack.

Context crosses execution boundaries explicitly: the RPC layer carries
the originating context on every request, handlers and long-lived
shipper loops run their generators through :meth:`Tracer.drive`, which
re-activates the flow's context around every resumed segment and clears
it at every yield. Between those activations nothing is ambient, so a
span opened by flow A while flow B is suspended can never attach to B.

Head sampling is deterministic and ``PYTHONHASHSEED``-independent: the
decision for the *n*-th flow hashes ``(seed, n)`` through ``blake2b``
(never Python's ``hash``), so the same seeded run samples the same
flows — and produces byte-identical renders — on every interpreter.

The tracer is **off by default** and costs one attribute check per
instrumented operation when off; no ``Span``, ``TraceContext``, or
keyword dict is allocated on the unsampled path (the ``NULL_SPAN``
fast-path guards at the instrumented sites).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Set

__all__ = ["Span", "TraceContext", "Tracer", "NULL_SPAN"]


class Span:
    """One timed operation; a node in the trace tree. Context manager."""

    __slots__ = (
        "tracer", "name", "substrate", "start", "end", "parent",
        "children", "attrs", "context", "span_id",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        substrate: str,
        start: float,
        parent: Optional["Span"],
        attrs: Dict[str, Any],
        context: Optional["TraceContext"] = None,
        span_id: str = "",
    ):
        self.tracer = tracer
        self.name = name
        self.substrate = substrate
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent
        self.children: List["Span"] = []
        self.attrs = attrs
        self.context = context
        self.span_id = span_id

    @property
    def duration(self) -> float:
        """Elapsed simulated seconds; uses the clock's now while still open."""
        return (self.end if self.end is not None else self.start) - self.start

    @property
    def open(self) -> bool:
        """Whether the span has not finished yet."""
        return self.end is None

    @property
    def trace_id(self) -> str:
        """The owning flow's trace id (empty for pre-context spans)."""
        return self.context.trace_id if self.context is not None else ""

    def annotate(self, **attrs: Any) -> "Span":
        """Attach key=value attributes to the span; returns self."""
        self.attrs.update(attrs)
        return self

    # -- tree queries --------------------------------------------------------
    def walk(self):
        """Yield this span and every descendant, depth-first (recursive)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def substrates(self) -> Set[str]:
        """Every substrate this span tree touches."""
        return {span.substrate for span in self.walk()}

    def depth(self) -> int:
        """Levels of nesting below this span (0 for a leaf)."""
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def render(self) -> str:
        """This subtree as an indented text tree (microsecond times)."""
        lines: List[str] = []
        _render_into(self, 0, lines)
        return "\n".join(lines)

    # -- context manager -----------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.tracer._finish(self)
        return False

    def __repr__(self) -> str:
        return (
            f"Span({self.name}@{self.substrate}, start={self.start:.9f}, "
            f"duration={self.duration:.9f})"
        )


def _render_into(span: Span, depth: int, lines: List[str]) -> None:
    attrs = "".join(
        f" {key}={value}" for key, value in sorted(span.attrs.items())
    )
    substrate = f" [{span.substrate}]" if span.substrate else ""
    lines.append(
        f"{'  ' * depth}{span.name}{substrate} "
        f"t={span.start * 1e6:.3f}us "
        f"dur={span.duration * 1e6:.3f}us{attrs}"
    )
    for child in span.children:
        _render_into(child, depth + 1, lines)


class _NullSpan:
    """The no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: Any) -> "_NullSpan":
        """No-op annotate matching :meth:`Span.annotate`; returns self."""
        return self


NULL_SPAN = _NullSpan()


class TraceContext:
    """One sampled flow: identity, sampling decision, and open-span stack.

    Carried on :class:`~repro.transport.RpcRequest` (and on replication
    log entries) to propagate causality across RPC, shard, and WAN hops.
    Only *sampled* flows ever allocate a context — an unsampled flow is
    represented as ``None`` everywhere, keeping that path allocation
    free.
    """

    __slots__ = ("tracer", "trace_id", "sampled", "stack", "_spans")

    def __init__(self, tracer: "Tracer", trace_id: str, sampled: bool = True):
        self.tracer = tracer
        self.trace_id = trace_id
        self.sampled = sampled
        #: This flow's open spans, innermost last.
        self.stack: List[Span] = []
        self._spans = 0

    def next_span_id(self) -> str:
        self._spans += 1
        return f"{self.trace_id}:{self._spans}"

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id}, open={len(self.stack)})"


def _blake_fraction(material: str) -> float:
    """A uniform [0, 1) draw derived from ``blake2b(material)``.

    Hash-based rather than ``random``-based so sampling decisions never
    perturb workload RNG streams, and ``blake2b`` rather than ``hash()``
    so they are identical across ``PYTHONHASHSEED`` values.
    """
    digest = hashlib.blake2b(material.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


class Tracer:
    """Builds per-flow span trees against any clock exposing ``now``.

    Usually reached as ``sim.tracer`` (the simulator is the clock).
    Typical use::

        sim.tracer.enable()
        sim.run_process(client.get(b"key"))
        print(sim.tracer.render())

    ``enable(sample_rate=0.1, seed=7)`` switches to head sampling: each
    new flow (each RPC issued outside an existing flow) draws one
    deterministic decision; unsampled flows record nothing and allocate
    nothing. ``exemplars=True`` additionally lets instrumented
    histograms capture the sampled flow's trace id per latency bucket
    (see :meth:`repro.telemetry.Histogram.exemplar`).
    """

    def __init__(self, clock):
        self.clock = clock
        self.enabled = False
        self.sample_rate = 1.0
        self.sample_seed = 0
        self.exemplars = False
        self.roots: List[Span] = []
        #: The flow whose synchronous segment is executing right now.
        #: Managed by :meth:`drive` / :meth:`activate`; ``None`` between
        #: activated segments.
        self._active: Optional[TraceContext] = None
        #: Legacy single-flow context for bare ``tracer.span()`` use
        #: outside any flow (only at sample_rate >= 1.0).
        self._ambient: Optional[TraceContext] = None
        self._flows = 0

    # -- switches ------------------------------------------------------------
    def enable(self, sample_rate: float = 1.0, seed: int = 0,
               exemplars: bool = False) -> "Tracer":
        """Start recording spans; returns self.

        ``sample_rate`` < 1.0 turns on deterministic head sampling
        seeded by ``seed``; ``exemplars`` arms histogram exemplar
        capture for sampled flows.
        """
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1]: {sample_rate}")
        self.enabled = True
        self.sample_rate = sample_rate
        self.sample_seed = seed
        self.exemplars = exemplars
        return self

    def disable(self) -> "Tracer":
        """Stop recording; finished spans are kept, new ones ignored."""
        self.enabled = False
        return self

    def reset(self) -> "Tracer":
        """Drop all recorded spans, flows, and sampling state; returns self."""
        self.roots = []
        self._active = None
        self._ambient = None
        self._flows = 0
        return self

    # -- flows ---------------------------------------------------------------
    def flow(self) -> Optional[TraceContext]:
        """Head-sample a new root flow.

        Returns a fresh :class:`TraceContext` when the deterministic
        per-flow draw lands under ``sample_rate`` (always, at the
        default rate of 1.0), or ``None`` — record nothing, allocate
        nothing — when it does not or when tracing is disabled.
        """
        if not self.enabled:
            return None
        self._flows += 1
        if self.sample_rate < 1.0 and _blake_fraction(
            f"sample/{self.sample_seed}/{self._flows}"
        ) >= self.sample_rate:
            return None
        trace_id = hashlib.blake2b(
            f"trace/{self.sample_seed}/{self._flows}".encode(), digest_size=8
        ).hexdigest()
        return TraceContext(self, trace_id)

    def activate(self, context: Optional[TraceContext]) -> None:
        """Make *context* the flow for the current synchronous segment."""
        self._active = context

    @property
    def active_context(self) -> Optional[TraceContext]:
        """The flow executing right now, or ``None`` between segments."""
        return self._active

    def drive(self, generator, context: TraceContext):
        """Run *generator* with *context* active across every resumption.

        Simulator processes interleave at yields; this wrapper restores
        the flow's context before each ``send``/``throw`` into the
        generator and clears it before handing the yielded event back to
        the engine, so every span the generator (and anything it calls
        synchronously) opens lands on its own flow's stack. Transparent
        to ``yield from``: same yielded events, same return value, same
        exceptions.
        """
        value: Any = None
        error: Optional[BaseException] = None
        while True:
            self._active = context
            try:
                if error is not None:
                    exc, error = error, None
                    item = generator.throw(exc)
                else:
                    item = generator.send(value)
            except StopIteration as stop:
                return stop.value
            finally:
                self._active = None
            try:
                value = yield item
            except BaseException as caught:
                error = caught

    # -- recording -----------------------------------------------------------
    def span(self, name: str, substrate: str = "", **attrs: Any):
        """Open a span on the active flow; close it by exiting ``with``.

        Returns :data:`NULL_SPAN` when tracing is disabled, so the
        instrumented datapaths pay (almost) nothing when not observed.
        With sampling on, a site executing outside any sampled flow also
        gets :data:`NULL_SPAN`; at the legacy full rate, spans opened
        outside any flow share one ambient context (single-flow use).
        """
        if not self.enabled:
            return NULL_SPAN
        context = self._active
        if context is None:
            if self.sample_rate < 1.0:
                return NULL_SPAN
            context = self._ambient
            if context is None:
                self._flows += 1
                trace_id = hashlib.blake2b(
                    f"trace/{self.sample_seed}/{self._flows}".encode(),
                    digest_size=8,
                ).hexdigest()
                context = self._ambient = TraceContext(self, trace_id)
            self._active = context
        return self.begin(context, name, substrate, attrs)

    def begin(self, context: TraceContext, name: str, substrate: str = "",
              attrs: Optional[Dict[str, Any]] = None,
              parent: Optional[Span] = None) -> Span:
        """Open a span on an explicit flow, optionally under an explicit
        parent (the RPC server parents ``rpc.handle`` under the caller's
        ``rpc.call`` this way). Defaults to the flow's innermost open
        span."""
        if parent is None:
            parent = context.stack[-1] if context.stack else None
        span = Span(
            self, name, substrate, self.clock.now, parent,
            attrs if attrs is not None else {},
            context, context.next_span_id(),
        )
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        context.stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end = self.clock.now
        context = span.context
        if context is not None:
            stack = context.stack
            # Usually the span is on top; an out-of-order close (a
            # retransmit racing a response) is removed where it is.
            if span in stack:
                stack.remove(span)
        if span.parent is None:
            if self._active is context:
                self._active = None
            if context is not None and context.sampled:
                recorder = getattr(self.clock, "recorder", None)
                if recorder is not None:
                    recorder.record_trace(span)

    @property
    def current(self) -> Optional[Span]:
        """The active flow's innermost open span, or ``None``."""
        context = self._active if self._active is not None else self._ambient
        if context is None or not context.stack:
            return None
        return context.stack[-1]

    # -- rendering -----------------------------------------------------------
    def substrates(self) -> Set[str]:
        """Distinct substrate prefixes (text before the first dot) seen."""
        found: Set[str] = set()
        for root in self.roots:
            found |= root.substrates()
        return found

    def render(self) -> str:
        """The trace as an indented tree with times in microseconds."""
        lines: List[str] = []
        for root in self.roots:
            _render_into(root, 0, lines)
        return "\n".join(lines)
