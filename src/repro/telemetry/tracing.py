"""Cross-substrate span tracing on the simulated clock.

A :class:`Span` is one timed operation on one substrate (an RPC call, a
link transmission, an NVMe command, a PCIe transfer). Spans nest by the
clock: a span started while another is open becomes its child, so a
single traced KV get renders as a tree crossing NIC -> transport ->
NVMe -> PCIe without any context threading through the datapath models.

The tracer is **off by default** and costs one attribute check per
instrumented operation when off. It is meant for tracing one logical
flow at a time (enable, run the request, disable); concurrent traced
flows interleave on the shared clock-ordered stack, exactly as two
requests interleave on a shared wire.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One timed operation; a node in the trace tree. Context manager."""

    __slots__ = (
        "tracer", "name", "substrate", "start", "end", "parent",
        "children", "attrs",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        substrate: str,
        start: float,
        parent: Optional["Span"],
        attrs: Dict[str, Any],
    ):
        self.tracer = tracer
        self.name = name
        self.substrate = substrate
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent
        self.children: List["Span"] = []
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Elapsed simulated seconds; uses the clock's now while still open."""
        return (self.end if self.end is not None else self.start) - self.start

    @property
    def open(self) -> bool:
        """Whether the span has not finished yet."""
        return self.end is None

    def annotate(self, **attrs: Any) -> "Span":
        """Attach key=value attributes to the span; returns self."""
        self.attrs.update(attrs)
        return self

    # -- tree queries --------------------------------------------------------
    def walk(self):
        """Yield this span and every descendant, depth-first (recursive)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def substrates(self) -> Set[str]:
        """Every substrate this span tree touches."""
        return {span.substrate for span in self.walk()}

    def depth(self) -> int:
        """Levels of nesting below this span (0 for a leaf)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    # -- context manager -----------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.tracer._finish(self)
        return False

    def __repr__(self) -> str:
        return (
            f"Span({self.name}@{self.substrate}, start={self.start:.9f}, "
            f"duration={self.duration:.9f})"
        )


class _NullSpan:
    """The no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: Any) -> "_NullSpan":
        """No-op annotate matching :meth:`Span.annotate`; returns self."""
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Builds span trees against any clock exposing ``now``.

    Usually reached as ``sim.tracer`` (the simulator is the clock).
    Typical use::

        sim.tracer.enable()
        sim.run_process(client.get(b"key"))
        print(sim.tracer.render())
    """

    def __init__(self, clock):
        self.clock = clock
        self.enabled = False
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- switches ------------------------------------------------------------
    def enable(self) -> "Tracer":
        """Start recording spans; returns self."""
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        """Stop recording; finished spans are kept, new ones ignored."""
        self.enabled = False
        return self

    def reset(self) -> "Tracer":
        """Drop all recorded spans and the open stack; returns self."""
        self.roots = []
        self._stack = []
        return self

    # -- recording -----------------------------------------------------------
    def span(self, name: str, substrate: str = "", **attrs: Any):
        """Open a span; close it by exiting the ``with`` block.

        Returns :data:`NULL_SPAN` when tracing is disabled, so the
        instrumented datapaths pay (almost) nothing when not observed.
        """
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        span = Span(self, name, substrate, self.clock.now, parent, attrs)
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end = self.clock.now
        # Usually the span is on top; an interleaved process may close
        # out of order, in which case it is simply removed where it is.
        if span in self._stack:
            self._stack.remove(span)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    # -- rendering -----------------------------------------------------------
    def substrates(self) -> Set[str]:
        """Distinct substrate prefixes (text before the first dot) seen."""
        found: Set[str] = set()
        for root in self.roots:
            found |= root.substrates()
        return found

    def render(self) -> str:
        """The trace as an indented tree with times in microseconds."""
        lines: List[str] = []

        def emit(span: Span, depth: int) -> None:
            attrs = "".join(
                f" {key}={value}" for key, value in sorted(span.attrs.items())
            )
            substrate = f" [{span.substrate}]" if span.substrate else ""
            lines.append(
                f"{'  ' * depth}{span.name}{substrate} "
                f"t={span.start * 1e6:.3f}us "
                f"dur={span.duration * 1e6:.3f}us{attrs}"
            )
            for child in span.children:
                emit(child, depth + 1)

        for root in self.roots:
            emit(root, 0)
        return "\n".join(lines)
