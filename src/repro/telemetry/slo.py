"""Declarative SLO rules evaluated against the time-series sampler.

A rule states an *objective* — a condition that should hold, e.g.
``eval.chaos.op_latency p99 < 2ms for 10ms`` — and the monitor turns
sampled violations into a deterministic alert log: an alert **fires**
once the objective has been violated continuously for the rule's
``for`` duration, and **resolves** on the first healthy sample after.
Because evaluation happens on sampler ticks of the simulated clock, the
alert log obeys the same contract as every other telemetry artifact:
same seed, byte-identical log.

Rule grammar (one line)::

    <metric path> <stat> <op> <threshold>[unit] [for <duration>[unit]]

where ``stat`` is ``value`` (counters/gauges), ``count``, ``mean``,
``max``, ``p99`` (histogram series produced by the sampler), or
``rate`` (the windowed per-second slope of the raw series); ``op`` is
one of ``< <= > >=``; units are ``ns us ms s`` (durations and
latency thresholds) or bare numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.telemetry.timeseries import Sampler

__all__ = ["SloRule", "SloAlert", "SloMonitor"]

_OPS: Dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_STATS = ("value", "count", "mean", "max", "p99", "rate")

_UNITS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def _quantity(text: str) -> float:
    """``2ms`` -> 0.002; ``150us`` -> 1.5e-4; bare numbers pass through."""
    for suffix in sorted(_UNITS, key=len, reverse=True):
        if text.endswith(suffix):
            head = text[: -len(suffix)]
            if head:
                try:
                    return float(head) * _UNITS[suffix]
                except ValueError:
                    break
    return float(text)


@dataclass(frozen=True)
class SloRule:
    """One objective: a sampled statistic compared against a threshold."""

    name: str
    path: str
    stat: str
    op: str
    threshold: float
    for_duration: float = 0.0

    def __post_init__(self) -> None:
        if self.stat not in _STATS:
            raise ConfigurationError(
                f"SLO {self.name}: unknown stat {self.stat!r} "
                f"(expected one of {', '.join(_STATS)})"
            )
        if self.op not in _OPS:
            raise ConfigurationError(
                f"SLO {self.name}: unknown operator {self.op!r}"
            )
        if self.for_duration < 0:
            raise ConfigurationError(
                f"SLO {self.name}: negative for-duration"
            )

    @classmethod
    def parse(cls, text: str, name: Optional[str] = None) -> "SloRule":
        """Parse ``"rpc.call.latency p99 < 2ms for 10ms"`` into a rule."""
        tokens = text.split()
        if len(tokens) not in (4, 6) or (len(tokens) == 6
                                         and tokens[4] != "for"):
            raise ConfigurationError(
                f"cannot parse SLO rule {text!r}: expected "
                "'<path> <stat> <op> <threshold> [for <duration>]'"
            )
        path, stat, op, threshold = tokens[:4]
        for_duration = _quantity(tokens[5]) if len(tokens) == 6 else 0.0
        return cls(
            name=name if name is not None else text,
            path=path,
            stat=stat,
            op=op,
            threshold=_quantity(threshold),
            for_duration=for_duration,
        )

    @property
    def series_name(self) -> str:
        """The sampler series this rule reads."""
        if self.stat in ("value", "rate"):
            return self.path
        return f"{self.path}.{self.stat}"

    def holds(self, value: float) -> bool:
        """Whether *value* satisfies this rule's threshold."""
        return _OPS[self.op](value, self.threshold)

    def describe(self) -> str:
        """Human-readable restatement of the rule, used in alert lines."""
        tail = (
            f" for {self.for_duration!r}s" if self.for_duration else ""
        )
        return (
            f"{self.path} {self.stat} {self.op} {self.threshold!r}{tail}"
        )


@dataclass(frozen=True)
class SloAlert:
    """One alert-log entry: a rule fired or resolved at a sampled time."""

    rule: str
    state: str  # "firing" | "resolved"
    at: float
    value: float

    def line(self) -> str:
        """One canonical log line for this alert (deterministic per seed)."""
        return (
            f"slo {self.state} rule={self.rule} at={self.at!r} "
            f"value={self.value!r}"
        )


class SloMonitor:
    """Evaluates rules on every sampler tick, keeping a breach log.

    Attaching the monitor registers it on ``sampler.on_sample``; a rule
    whose series has no data yet is simply skipped (no data is neither
    healthy nor breaching).
    """

    def __init__(self, sampler: Sampler,
                 rules: Sequence[SloRule] = ()) -> None:
        self.sampler = sampler
        self._recorder = getattr(sampler.clock, "recorder", None)
        self.rules: List[SloRule] = []
        self.alerts: List[SloAlert] = []
        #: Alert hooks: each callable receives every :class:`SloAlert`
        #: (firing *and* resolved) synchronously, on the sampler tick
        #: that produced it. This is the SLO→action wiring surface —
        #: autoscalers, brownout escalators, and pagers subscribe here
        #: instead of polling :attr:`alerts`. Hooks run in registration
        #: order and must not raise.
        self.on_alert: List[Callable[[SloAlert], None]] = []
        self._violating_since: Dict[str, Optional[float]] = {}
        self._firing: Dict[str, bool] = {}
        for rule in rules:
            self.add(rule)
        sampler.on_sample.append(self.check)

    def add(self, rule: SloRule) -> "SloMonitor":
        """Register *rule* for evaluation on every sampler tick; returns self."""
        if any(existing.name == rule.name for existing in self.rules):
            raise ConfigurationError(f"duplicate SLO rule name {rule.name!r}")
        self.rules.append(rule)
        self._violating_since[rule.name] = None
        self._firing[rule.name] = False
        return self

    # -- evaluation ----------------------------------------------------------
    def _evaluate(self, rule: SloRule) -> Optional[float]:
        series = self.sampler.series(rule.series_name)
        if series is None or len(series) == 0:
            return None
        if rule.stat == "rate":
            window = rule.for_duration if rule.for_duration else None
            return series.rate(window)
        last = series.last
        assert last is not None
        return last[1]

    def check(self, now: float) -> None:
        """One evaluation pass (normally invoked by the sampler)."""
        for rule in self.rules:
            value = self._evaluate(rule)
            if value is None:
                continue
            if rule.holds(value):
                if self._firing[rule.name]:
                    alert = SloAlert(rule.name, "resolved", now, value)
                    self.alerts.append(alert)
                    if self._recorder is not None:
                        self._recorder.record("slo", alert.line())
                    for hook in self.on_alert:
                        hook(alert)
                self._firing[rule.name] = False
                self._violating_since[rule.name] = None
                continue
            since = self._violating_since[rule.name]
            if since is None:
                since = now
                self._violating_since[rule.name] = now
            if not self._firing[rule.name] \
                    and now - since >= rule.for_duration:
                self._firing[rule.name] = True
                alert = SloAlert(rule.name, "firing", now, value)
                self.alerts.append(alert)
                if self._recorder is not None:
                    # An objective just started failing: journal it and
                    # snapshot a post-mortem before the rings roll on.
                    self._recorder.record("slo", alert.line())
                    self._recorder.dump(f"slo-firing:{rule.name}")
                for hook in self.on_alert:
                    hook(alert)

    # -- reading -------------------------------------------------------------
    @property
    def firing(self) -> List[str]:
        """Rules currently in the firing state, sorted by name."""
        return sorted(name for name, on in self._firing.items() if on)

    def fired_count(self, rule_name: Optional[str] = None) -> int:
        """Alerts fired so far, optionally filtered to one rule name."""
        return sum(
            1 for alert in self.alerts
            if alert.state == "firing"
            and (rule_name is None or alert.rule == rule_name)
        )

    def alert_log_bytes(self) -> bytes:
        """The alert log as canonical bytes (same seed => same bytes)."""
        return "\n".join(alert.line() for alert in self.alerts).encode()

    def summary(self) -> str:
        """One line per rule: state, fired/resolved counts."""
        lines = []
        for rule in self.rules:
            fired = self.fired_count(rule.name)
            state = "FIRING" if self._firing[rule.name] else "ok"
            lines.append(
                f"{rule.name}: {state} (fired {fired}x) — {rule.describe()}"
            )
        return "\n".join(lines)
