"""Slot scheduling for multi-tenant DPUs (paper §2.2, §4(4)).

Tenants arrive with compiled bitstreams; the scheduler grants free slots
immediately and otherwise queues, evicting the least-recently-loaded idle
slot when preemption is allowed. Every placement is a partial
reconfiguration through the (serialized) ICAP, which is what bounds how
fast the DPU can be re-multiplexed — experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import CapacityError
from repro.hw.fpga.bitstream import Bitstream
from repro.hw.fpga.fabric import Fabric, ReconfigurableSlot
from repro.hw.fpga.icap import Icap
from repro.sim import Simulator, Store


@dataclass
class TenantRequest:
    """A tenant's pending/granted slot request with wait accounting."""

    tenant: str
    bitstream: Bitstream
    arrived_at: float = 0.0
    granted_at: Optional[float] = None
    slot_index: Optional[int] = None

    @property
    def wait_time(self) -> float:
        if self.granted_at is None:
            raise CapacityError("request not granted yet")
        return self.granted_at - self.arrived_at


class SlotScheduler:
    """FIFO tenant queue over the fabric's reconfigurable slots."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        icap: Icap,
        allow_preemption: bool = False,
    ):
        self.sim = sim
        self.fabric = fabric
        self.icap = icap
        self.allow_preemption = allow_preemption
        self.granted: List[TenantRequest] = []
        self._queue: Store = Store(sim)
        self._released: Store = Store(sim)
        sim.process(self._scheduler_loop())

    def submit(self, tenant: str, bitstream: Bitstream) -> TenantRequest:
        request = TenantRequest(tenant, bitstream, arrived_at=self.sim.now)
        self.sim.process(self._enqueue(request))
        return request

    def _enqueue(self, request: TenantRequest):
        yield self._queue.put(request)

    def release(self, slot_index: int) -> None:
        """Tenant done: slot becomes reclaimable."""
        slot = self.fabric.slots[slot_index]
        self.sim.process(self._signal_release(slot))

    def _signal_release(self, slot: ReconfigurableSlot):
        if slot.occupied:
            slot.unload()
        yield self._released.put(slot)

    def _pick_slot(self) -> Optional[ReconfigurableSlot]:
        free = self.fabric.free_slot()
        if free is not None:
            return free
        if self.allow_preemption:
            # Evict the slot with the fewest loads (least recently useful).
            victim = min(self.fabric.slots, key=lambda s: s.load_count)
            victim.unload()
            return victim
        return None

    def _scheduler_loop(self):
        while True:
            request = yield self._queue.get()
            slot = self._pick_slot()
            while slot is None:
                slot = yield self._released.get()
                if slot.occupied:  # raced with someone else
                    slot = None
            yield from self.icap.load(slot, request.bitstream, tenant=request.tenant)
            request.granted_at = self.sim.now
            request.slot_index = slot.index
            self.granted.append(request)

    def utilization(self) -> float:
        return self.fabric.utilization()
