"""The OS-shell: Hyperion's network control plane (paper §2).

"We are in the process of developing an OS-shell and control path over the
network that can program the FPGA without a CPU, leveraging Partial Dynamic
Reconfiguration through the ICAP." The shell accepts *signed, encrypted*
bitstreams over a control port, verifies them, and drives the ICAP — the
privileged configuration kernel of §2.2.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.hw.fpga.bitstream import BitstreamAuthority, SignedBitstream
from repro.dpu.hyperion import HyperionDpu
from repro.sim import Simulator
from repro.transport.rpc import RpcServer


class OsShell:
    """Control-plane RPC service bound to a DPU."""

    def __init__(
        self,
        sim: Simulator,
        dpu: HyperionDpu,
        server: RpcServer,
        authority: BitstreamAuthority,
    ):
        self.sim = sim
        self.dpu = dpu
        self.authority = authority
        self.loads_accepted = 0
        self.loads_rejected = 0
        server.register("shell.load", self._load)
        server.register("shell.unload", self._unload)
        server.register("shell.slots", self._slots)
        server.register("shell.persist", self._persist)
        server.register("shell.inventory", self._inventory)

    # -- handlers ------------------------------------------------------------
    def _load(self, signed: SignedBitstream, tenant: str):
        """Verify, pick a slot, partially reconfigure; returns slot index."""
        self.dpu.require_booted()
        if not isinstance(signed, SignedBitstream):
            self.loads_rejected += 1
            raise ConfigurationError("expected a signed bitstream")
        if not self.authority.verify(signed):
            self.loads_rejected += 1
            raise ConfigurationError("bitstream signature rejected")
        if not signed.encrypted:
            self.loads_rejected += 1
            raise ConfigurationError("bitstream must be encrypted in transit")
        slot = self.dpu.fabric.free_slot()
        if slot is None:
            self.loads_rejected += 1
            raise ConfigurationError("no free slots")
        if not slot.can_host(signed.bitstream):
            self.loads_rejected += 1
            raise ConfigurationError("bitstream exceeds the slot budget")
        yield from self.dpu.icap.load(slot, signed.bitstream, tenant=tenant)
        self.loads_accepted += 1
        return slot.index

    def _unload(self, slot_index: int, tenant: str):
        self.dpu.require_booted()
        slot = self.dpu.fabric.slots[slot_index]
        if not slot.occupied:
            raise ConfigurationError(f"slot {slot_index} is empty")
        if slot.tenant != tenant:
            raise ConfigurationError(f"slot {slot_index} belongs to another tenant")
        slot.unload()
        return True

    def _slots(self) -> List[Dict]:
        return [
            {
                "slot": slot.index,
                "occupied": slot.occupied,
                "bitstream": slot.loaded.name if slot.occupied else None,
                "tenant": slot.tenant,
            }
            for slot in self.dpu.fabric.slots
        ]

    def _persist(self):
        """Persist the segment translation table (paper §2.1)."""
        self.dpu.require_booted()
        written = yield from self.dpu.store.timed_persist_table()
        return written

    def _inventory(self) -> Dict:
        return self.dpu.inventory()
