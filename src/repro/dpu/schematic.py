"""The Figure 2 schematic as a checkable component graph.

Nodes and edges follow the paper's diagram: QSFP cages feed a MUX/DEMUX
pair, AXIS arbiters fan into the eHDL accelerator slots managed by the
runtime config engine; the NVMe Host IP core drives four PCIe x4 bridge
cores through the crossover board to the SSDs, clocked by the 100 MHz
reference generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.common.errors import ConfigurationError


@dataclass
class SchematicNode:
    """One component of the Figure 2 graph and its outgoing edges."""

    name: str
    kind: str
    outputs: List[str] = field(default_factory=list)


class Schematic:
    """A small directed graph with reachability checks."""

    def __init__(self) -> None:
        self.nodes: Dict[str, SchematicNode] = {}

    def add(self, name: str, kind: str) -> SchematicNode:
        if name in self.nodes:
            raise ConfigurationError(f"duplicate node {name}")
        node = SchematicNode(name, kind)
        self.nodes[name] = node
        return node

    def connect(self, src: str, dst: str) -> None:
        if src not in self.nodes or dst not in self.nodes:
            raise ConfigurationError(f"unknown node in edge {src} -> {dst}")
        self.nodes[src].outputs.append(dst)

    def edges(self) -> List[Tuple[str, str]]:
        return [
            (node.name, dst) for node in self.nodes.values() for dst in node.outputs
        ]

    def reachable_from(self, start: str) -> Set[str]:
        seen: Set[str] = set()
        stack = [start]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.nodes[name].outputs)
        return seen

    def nodes_of_kind(self, kind: str) -> List[str]:
        return sorted(n.name for n in self.nodes.values() if n.kind == kind)


def build_schematic(num_slots: int = 5, num_ssds: int = 4) -> Schematic:
    """Construct the Figure 2 graph."""
    s = Schematic()
    s.add("qsfp0", "network-port")
    s.add("qsfp1", "network-port")
    s.add("mux", "mux")
    s.add("demux", "demux")
    s.add("axis-arbiter-0", "arbiter")
    s.add("axis-arbiter-1", "arbiter")
    s.add("runtime-config-engine", "config")
    for i in range(num_slots):
        s.add(f"ehdl-slot-{i}", "accelerator-slot")
    s.add("nvme-host-ip", "nvme-host")
    s.add("refclk-100mhz", "clock")
    s.add("xover-board", "passive")
    for i in range(num_ssds):
        s.add(f"pcie-bridge-{i}", "pcie-bridge")
        s.add(f"nvme-ssd-{i}", "ssd")

    s.connect("qsfp0", "mux")
    s.connect("qsfp1", "mux")
    s.connect("mux", "axis-arbiter-0")
    s.connect("axis-arbiter-0", "demux")
    s.connect("demux", "qsfp0")
    s.connect("demux", "qsfp1")
    for i in range(num_slots):
        slot = f"ehdl-slot-{i}"
        s.connect("axis-arbiter-0", slot)
        s.connect(slot, "axis-arbiter-1")
        s.connect("runtime-config-engine", slot)
    s.connect("axis-arbiter-1", "demux")
    s.connect("axis-arbiter-1", "nvme-host-ip")
    s.connect("nvme-host-ip", "axis-arbiter-1")
    for i in range(num_ssds):
        bridge = f"pcie-bridge-{i}"
        s.connect("nvme-host-ip", bridge)
        s.connect(bridge, "xover-board")
        s.connect("xover-board", f"nvme-ssd-{i}")
        s.connect("refclk-100mhz", f"nvme-ssd-{i}")
    return s


def schematic_table(s: Schematic) -> str:
    """Render the graph as the table the figure-reproduction bench prints."""
    lines = ["component                kind              feeds"]
    lines.append("-" * 72)
    for name in sorted(s.nodes):
        node = s.nodes[name]
        feeds = ", ".join(node.outputs) if node.outputs else "-"
        lines.append(f"{name:<24} {node.kind:<17} {feeds}")
    return "\n".join(lines)
