"""The composed Hyperion DPU and its standalone boot sequence.

Hardware inventory per the prototype (paper Figure 1/2): an Alveo U280
fabric carved into eHDL slots, two 100 GbE ports, a PCIe root complex *on
the FPGA* with an x16 bifurcated into four x4 bridges, four NVMe SSDs, and
the AXI address split that fuses FPGA DRAM and NVMe BARs into the
single-level segment store of §2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError, PowerLossError
from repro.faults import FaultInjector, FaultKind
from repro.hw.fpga.axi import AddressRange, AxiStreamInterconnect
from repro.hw.fpga.fabric import Fabric
from repro.hw.fpga.icap import Icap
from repro.hw.net.port import NetworkPort
from repro.hw.net.switch import Network
from repro.hw.nvme.controller import NvmeController, NvmeQueuePair
from repro.hw.nvme.namespace import Namespace
from repro.hw.pcie.device import PcieBridge
from repro.hw.pcie.link import PcieLink
from repro.hw.pcie.root import RootComplex
from repro.memory.backends import DramBackend, NvmeBackend
from repro.memory.store import (
    DRAM_WINDOW_BASE,
    HBM_WINDOW_BASE,
    NVME_WINDOW_BASE,
    SingleLevelStore,
)
from repro.power.energy import EnergyMeter, HYPERION_POWER
from repro.sim import Simulator

#: FPGA configuration + JTAG self-test at power-on (paper §2: "the DPU
#: boots in a stand-alone mode without any CPU when power is applied and
#: FPGA JTAG self-tests are passed").
JTAG_SELF_TEST_LATENCY = 120e-3
SHELL_CONFIG_LATENCY = 40e-3


@dataclass
class BootReport:
    """What standalone bring-up found and how long it took."""

    jtag_ok: bool = False
    enumerated_ssds: List[str] = field(default_factory=list)
    segment_table_recovered: bool = False
    recovered_segments: int = 0
    boot_time: float = 0.0


class HyperionDpu:
    """One self-hosting, CPU-free DPU attached to a network."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str = "hyperion",
        num_slots: int = 5,
        num_ssds: int = 4,
        ssd_blocks: int = 262_144,  # 1 GiB per SSD at 4 KiB blocks
        dram_capacity: int = 256 * 1024 * 1024,
    ):
        if num_ssds < 1:
            raise ConfigurationError("Hyperion needs at least one SSD")
        self.sim = sim
        self.address = address
        # -- fabric + reconfiguration (slot counters land in the sim's
        # central registry rather than a standalone one)
        self.fabric = Fabric(
            num_slots=num_slots,
            metrics=sim.telemetry.unique_scope(f"{address}.fpga"),
        )
        self.icap = Icap(sim)
        # -- network: 2x QSFP28, modeled as two endpoints on the fabric
        self.port0: NetworkPort = network.endpoint(address)
        self.port1: NetworkPort = network.endpoint(f"{address}.qsfp1")
        # -- PCIe: FPGA-hosted root complex, x16 bifurcated to 4x x4
        self.root_complex = RootComplex(name=f"{address}-root")
        self.ssds: List[NvmeController] = []
        for i in range(num_ssds):
            bridge = PcieBridge(f"{address}-bridge-{i}")
            link = PcieLink(sim, lanes=4)
            ssd = NvmeController(sim, f"{address}-nvme-{i}", link=link)
            ssd.add_namespace(Namespace(1, ssd_blocks))
            bridge.attach(ssd, link)
            self.root_complex.add_root_port(bridge, PcieLink(sim, lanes=4))
            self.ssds.append(ssd)
        # -- memory system
        self.axi = AxiStreamInterconnect()
        self.dram_backend = DramBackend(sim, self.fabric.dram, dram_capacity)
        self.hbm_backend = DramBackend(
            sim, self.fabric.hbm, min(dram_capacity, self.fabric.hbm.capacity)
        )
        self._store_qp: Optional[NvmeQueuePair] = None
        self.store: Optional[SingleLevelStore] = None
        # -- accounting
        self.energy = EnergyMeter(HYPERION_POWER)
        self.boot_report: Optional[BootReport] = None
        self._booted = False
        self.power_failed = False
        self.power_failed_at: Optional[float] = None

    # -- bring-up ------------------------------------------------------------
    def boot(self, recover_store: bool = False):
        """Process: standalone boot — JTAG, enumeration, store mount."""
        if self._booted:
            raise ConfigurationError("already booted")
        report = BootReport()
        started = self.sim.now
        yield self.sim.timeout(JTAG_SELF_TEST_LATENCY)
        report.jtag_ok = True
        yield self.sim.timeout(SHELL_CONFIG_LATENCY)
        # PCIe enumeration by the on-fabric root complex.
        for record in self.root_complex.enumerate():
            report.enumerated_ssds.append(record.bdf)
        # Static AXI range split (paper §2.1).
        self.axi.add_range(
            AddressRange(DRAM_WINDOW_BASE, self.dram_backend.capacity,
                         self.dram_backend, "fpga-dram")
        )
        self.axi.add_range(
            AddressRange(HBM_WINDOW_BASE, self.hbm_backend.capacity,
                         self.hbm_backend, "fpga-hbm")
        )
        # Start the SSD controllers and build the store over SSD 0.
        for ssd in self.ssds:
            ssd.start()
        self._store_qp = self.ssds[0].create_queue_pair()
        nvme_backend = NvmeBackend(self.sim, self.ssds[0], self._store_qp)
        self.axi.add_range(
            AddressRange(NVME_WINDOW_BASE, nvme_backend.capacity,
                         nvme_backend, "nvme-bar-window")
        )
        if recover_store:
            self.store = SingleLevelStore.recover(
                self.sim, self.dram_backend, nvme_backend, hbm=self.hbm_backend
            )
            report.segment_table_recovered = True
            report.recovered_segments = len(self.store.table)
        else:
            self.store = SingleLevelStore(
                self.sim, self.dram_backend, nvme_backend, hbm=self.hbm_backend
            )
        report.boot_time = self.sim.now - started
        self.boot_report = report
        self._booted = True
        return report

    # -- power loss ------------------------------------------------------------
    def power_cycle(self) -> "HyperionDpu":
        """Abrupt power loss: DRAM contents vanish; flash survives.

        Returns an un-booted twin sharing the same SSD objects, modeling
        the same physical device after power returns. Call
        ``boot(recover_store=True)`` on the twin.
        """
        twin = object.__new__(HyperionDpu)
        twin.__dict__.update(self.__dict__)
        twin.fabric = Fabric(
            num_slots=len(self.fabric.slots),
            metrics=self.sim.telemetry.unique_scope(f"{self.address}.fpga"),
        )
        twin.icap = Icap(self.sim)
        twin.root_complex = RootComplex(name=f"{self.address}-root-recovered")
        for i, ssd in enumerate(self.ssds):
            bridge = PcieBridge(f"{self.address}-bridge-{i}r")
            ssd.bus = None
            ssd.device = None
            bridge.attach(ssd, ssd.link)
            twin.root_complex.add_root_port(bridge, PcieLink(self.sim, lanes=4))
        twin.axi = AxiStreamInterconnect()
        twin.dram_backend = DramBackend(
            self.sim, self.fabric.dram, self.dram_backend.capacity
        )
        twin.hbm_backend = DramBackend(
            self.sim, self.fabric.hbm, self.hbm_backend.capacity
        )
        twin.store = None
        twin._store_qp = None
        twin.boot_report = None
        twin._booted = False
        twin.power_failed = False
        twin.power_failed_at = None
        return twin

    def monitor_power(self, injector: FaultInjector,
                      component: Optional[str] = None,
                      poll_interval: float = 10e-3):
        """Process: trip on an injected POWER_LOSS fault mid-run.

        Polls the injector under ``component`` (default: this DPU's network
        address) and, when the fault fires, snapshots the un-booted twin via
        :meth:`power_cycle` and raises :class:`PowerLossError` carrying it
        (``exc.twin``). The loop exits once the plan has no pending
        POWER_LOSS specs, so it never wedges a fault-free simulation.
        """
        component = component or self.address
        while injector.pending(component, FaultKind.POWER_LOSS):
            yield self.sim.timeout(poll_interval)
            if injector.fires(component, FaultKind.POWER_LOSS):
                self.power_failed = True
                self.power_failed_at = self.sim.now
                error = PowerLossError(
                    f"{self.address}: power lost at t={self.sim.now:.6f}"
                )
                error.twin = self.power_cycle()
                raise error

    # -- convenience -----------------------------------------------------------
    @property
    def booted(self) -> bool:
        return self._booted

    def require_booted(self) -> None:
        if not self._booted:
            raise ConfigurationError("DPU not booted")

    def inventory(self) -> Dict[str, object]:
        """Bill of materials, for the Figure 1 reproduction."""
        return {
            **self.fabric.inventory(),
            "qsfp_ports": 2,
            "network_gbps": 100,
            "nvme_ssds": len(self.ssds),
            "pcie_bridges": len(self.root_complex.root_ports),
            "pcie_lanes_per_bridge": 4,
            "tdp_watts": sum(
                component.tdp_watts for component in self.energy.components.values()
            ),
        }
