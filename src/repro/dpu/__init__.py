"""The Hyperion DPU: the paper's blueprint, assembled.

* :mod:`repro.dpu.schematic` — the Figure 2 component graph;
* :mod:`repro.dpu.hyperion` — the composed device: FPGA fabric + ICAP,
  2x100 GbE ports, a self-hosted PCIe root complex with four bifurcated
  bridges and NVMe SSDs, the AXI range split, and the single-level segment
  store; ``boot()`` runs the standalone bring-up of §2;
* :mod:`repro.dpu.osshell` — the network control plane ("OS-shell") that
  loads authorized, encrypted bitstreams into slots with no CPU anywhere;
* :mod:`repro.dpu.tenancy` — slot scheduling for multi-tenant use.
"""

from repro.dpu.schematic import SchematicNode, build_schematic, schematic_table
from repro.dpu.hyperion import HyperionDpu, BootReport
from repro.dpu.cluster import (
    DpuKvCluster,
    FailoverKvClient,
    FailoverStats,
    ReplicatedDpuKvCluster,
    RoutingClient,
)
from repro.dpu.osshell import OsShell
from repro.dpu.tenancy import SlotScheduler, TenantRequest

__all__ = [
    "SchematicNode",
    "build_schematic",
    "schematic_table",
    "HyperionDpu",
    "BootReport",
    "DpuKvCluster",
    "ReplicatedDpuKvCluster",
    "RoutingClient",
    "FailoverKvClient",
    "FailoverStats",
    "OsShell",
    "SlotScheduler",
    "TenantRequest",
]
