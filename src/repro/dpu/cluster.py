"""Distributed CPU-free applications over multiple DPUs (paper §2.4, §4).

The paper's C1/C2 workload split and discussion question 3: how to build
applications "executed over multiple DPUs"? Following the cited MICA
pattern, the cluster uses *client-driven request routing*: clients hash
keys to the owning DPU and talk to it directly — shared-nothing,
run-to-completion, with no coordinator in the data path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.common.errors import ConfigurationError, DegradedError
from repro.overload.breaker import CircuitBreaker, CircuitOpenError
from repro.sharding.ring import DEFAULT_VNODES, HashRing
from repro.telemetry import MetricScope
from repro.hw.net import Network
from repro.hw.nvme import Namespace, NvmeController
from repro.sim import Simulator
from repro.storage.kvssd import KvSsd, KvSsdClient, KvSsdService
from repro.transport import RetryPolicy, RpcClient, RpcError, RpcServer, UdpSocket


@dataclass
class ClusterStats:
    """Aggregate and per-DPU operation counts for a cluster.

    A read-through snapshot assembled from each device's registry-backed
    ``gets``/``puts`` counters at :meth:`DpuKvCluster.stats` time.
    """

    routed_ops: int = 0
    per_dpu_ops: Optional[Dict[str, int]] = None


class DpuKvCluster:
    """N standalone KV-SSD DPUs behind client-driven routing.

    Placement is a consistent-hash ring
    (:class:`~repro.sharding.ring.HashRing`) rather than ``hash % n``:
    the owner of a key depends only on the ring geometry, so growing or
    shrinking the cluster re-homes ~1/n of the keyspace instead of
    nearly all of it (the property live migration builds on).
    """

    def __init__(self, sim: Simulator, network: Network, dpu_count: int = 4,
                 ssd_blocks: int = 65536, vnodes: int = DEFAULT_VNODES):
        if dpu_count < 1:
            raise ConfigurationError("need at least one DPU")
        self.sim = sim
        self.network = network
        self.ssd_blocks = ssd_blocks
        self.addresses: List[str] = []
        self.devices: List[KvSsd] = []
        self.servers: List[RpcServer] = []
        self.ring = HashRing(vnodes=vnodes)
        for index in range(dpu_count):
            self._build_dpu(f"kv-dpu-{index}")

    def _build_dpu(self, address: str) -> str:
        """Stand up one KV-SSD DPU, serve it, and place it on the ring."""
        controller = NvmeController(self.sim, f"{address}-flash")
        controller.add_namespace(Namespace(1, self.ssd_blocks))
        device = KvSsd(self.sim, controller, memtable_limit=100_000)
        server = RpcServer(
            self.sim, UdpSocket(self.sim, self.network.endpoint(address))
        )
        KvSsdService(server, device)
        self.addresses.append(address)
        self.devices.append(device)
        self.servers.append(server)
        self.ring.add_node(address)
        return address

    def owner_of(self, key: bytes) -> str:
        """The DPU owning *key* under the current ring."""
        return self.ring.owner_of(key)

    def stats(self) -> ClusterStats:
        per_dpu = {
            address: device.gets + device.puts
            for address, device in zip(self.addresses, self.devices)
        }
        return ClusterStats(
            routed_ops=sum(per_dpu.values()), per_dpu_ops=per_dpu
        )

    def balance(self) -> float:
        """max/mean ops across DPUs — 1.0 is a perfect spread."""
        counts = [d.gets + d.puts for d in self.devices]
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0


class RoutingClient:
    """A client that owns the partition map (passive disaggregation: the
    smartness lives with the client, the DPUs only serve fast-path ops)."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 cluster: DpuKvCluster):
        self.cluster = cluster
        rpc = RpcClient(sim, UdpSocket(sim, network.endpoint(name)))
        self._stubs: Dict[str, KvSsdClient] = {
            address: KvSsdClient(rpc, address) for address in cluster.addresses
        }
        self._metrics = sim.telemetry.unique_scope(f"dpu.client.{name}")
        self._ops = self._metrics.counter("ops")

    @property
    def ops(self) -> int:
        return self._ops.value

    def put(self, key: bytes, value: bytes):
        stub = self._stubs[self.cluster.owner_of(key)]
        yield from stub.put(key, value)
        self._ops.inc()

    def get(self, key: bytes):
        stub = self._stubs[self.cluster.owner_of(key)]
        value = yield from stub.get(key)
        self._ops.inc()
        return value

    def delete(self, key: bytes):
        stub = self._stubs[self.cluster.owner_of(key)]
        yield from stub.delete(key)
        self._ops.inc()


class ReplicatedDpuKvCluster(DpuKvCluster):
    """K-way replicated KV cluster that survives dead or degraded DPUs.

    Each key's replica chain is the K DPUs starting at its hash owner
    (consecutive on the ring). Writes walk the chain head-to-tail; reads
    are served by any live replica — a client-driven approximation of
    chain replication that keeps the DPUs dumb and shared-nothing, in the
    same spirit as the MICA routing above. :meth:`kill` models an abrupt
    DPU death (its traffic blackholes at the switch) so failover paths can
    be exercised deterministically.
    """

    def __init__(self, sim: Simulator, network: Network, dpu_count: int = 4,
                 replication: int = 2, ssd_blocks: int = 65536):
        super().__init__(sim, network, dpu_count=dpu_count,
                         ssd_blocks=ssd_blocks)
        if not 1 <= replication <= dpu_count:
            raise ConfigurationError(
                f"replication factor {replication} needs "
                f"1..{dpu_count} replicas"
            )
        self.replication = replication
        self.down: Set[str] = set()

    def replicas_of(self, key: bytes) -> List[str]:
        """The key's replica chain, head (ring owner) first.

        Replicas are the next distinct DPUs clockwise on the hash ring,
        so they are always on distinct physical devices.
        """
        return self.ring.replicas_of(key, self.replication)

    def kill(self, index: int) -> str:
        """Abruptly kill one DPU: all frames to it vanish at the switch."""
        address = self.addresses[index]
        self.down.add(address)
        self.network.switch.blackhole(address)
        return address

    def revive(self, index: int) -> str:
        """Bring a killed DPU back (its replica data may be stale)."""
        address = self.addresses[index]
        self.down.discard(address)
        self.network.switch.restore(address)
        return address

    def live_addresses(self) -> List[str]:
        return [a for a in self.addresses if a not in self.down]


class FailoverStats:
    """What a failover client observed: successes, failovers, dead ends.

    A facade over telemetry counters; ``marked_down`` stays a plain set of
    addresses (its size is mirrored into a gauge).
    """

    def __init__(self, metrics: Optional[MetricScope] = None):
        self._metrics = (
            metrics if metrics is not None
            else MetricScope.standalone("dpu.failover")
        )
        self._reads = self._metrics.counter("reads")
        self._writes = self._metrics.counter("writes")
        self._failed_ops = self._metrics.counter("failed_ops")
        # Ops that only succeeded on a non-head replica.
        self._failovers = self._metrics.counter("failovers")
        # Individual replica RPCs that timed out or errored.
        self._replica_failures = self._metrics.counter("replica_failures")
        self._marked_down_gauge = self._metrics.gauge("marked_down")
        self.marked_down: Set[str] = _MarkedDownSet(self._marked_down_gauge)

    @property
    def reads(self) -> int:
        return self._reads.value

    @reads.setter
    def reads(self, value: int) -> None:
        self._reads._set(value)

    @property
    def writes(self) -> int:
        return self._writes.value

    @writes.setter
    def writes(self, value: int) -> None:
        self._writes._set(value)

    @property
    def failed_ops(self) -> int:
        return self._failed_ops.value

    @failed_ops.setter
    def failed_ops(self, value: int) -> None:
        self._failed_ops._set(value)

    @property
    def failovers(self) -> int:
        return self._failovers.value

    @failovers.setter
    def failovers(self, value: int) -> None:
        self._failovers._set(value)

    @property
    def replica_failures(self) -> int:
        return self._replica_failures.value

    @replica_failures.setter
    def replica_failures(self, value: int) -> None:
        self._replica_failures._set(value)


class _MarkedDownSet(set):
    """A set that mirrors its size into a telemetry gauge."""

    def __init__(self, gauge):
        super().__init__()
        self._gauge = gauge

    def add(self, item) -> None:
        super().add(item)
        self._gauge.set(len(self))

    def discard(self, item) -> None:
        super().discard(item)
        self._gauge.set(len(self))


class FailoverKvClient:
    """Client-driven failover over a :class:`ReplicatedDpuKvCluster`.

    The client owns the partition map *and* the health map: replicas that
    time out are marked down and demoted in the read preference order;
    :meth:`probe` (or a background :meth:`probe_all` sweep) marks them up
    again. Every RPC carries a timeout, bounded retries with exponential
    backoff + jitter, and an overall deadline, so a dead DPU costs a few
    retransmit intervals — never a hung simulation.

    Each replica is additionally guarded by a
    :class:`~repro.overload.CircuitBreaker`: after a few consecutive
    failed calls the circuit opens and further calls to that replica are
    refused *instantly* — an immediate failover down the chain instead
    of burning the per-call deadline re-timing-out against a corpse. A
    successful :meth:`probe` closes the circuit again.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        cluster: ReplicatedDpuKvCluster,
        timeout: float = 1.5e-3,
        retries: int = 1,
        deadline: float = 50e-3,
        policy: Optional[RetryPolicy] = None,
        breaker_failure_threshold: int = 3,
        breaker_reset_timeout: Optional[float] = None,
        history=None,
    ):
        self.sim = sim
        self.cluster = cluster
        self.name = name
        #: Optional :class:`~repro.verify.HistoryRecorder`: when set,
        #: every KV op records invoke/outcome for consistency checking.
        self.history = history
        self.rpc = RpcClient(sim, UdpSocket(sim, network.endpoint(name)))
        self.timeout = timeout
        self.retries = retries
        self.deadline = deadline
        self.policy = policy if policy is not None else RetryPolicy(
            base=timeout, multiplier=2.0, max_interval=max(timeout * 8, timeout),
            jitter=0.1,
        )
        self.health: Dict[str, bool] = {
            address: True for address in cluster.addresses
        }
        scope = sim.telemetry.unique_scope(f"dpu.failover.{name}")
        self.stats = FailoverStats(scope)
        if breaker_reset_timeout is None:
            breaker_reset_timeout = timeout * 20
        self.breakers: Dict[str, CircuitBreaker] = {
            address: CircuitBreaker(
                sim, scope.scope(f"breaker.{address}"),
                failure_threshold=breaker_failure_threshold,
                reset_timeout=breaker_reset_timeout,
            )
            for address in cluster.addresses
        }

    # -- internals -----------------------------------------------------------
    def _call(self, address: str, method: str, *args,
              request_size: int = 64, response_size: int = 64):
        breaker = self.breakers[address]
        if not breaker.allow():
            raise CircuitOpenError(f"{method} to {address}: circuit open")
        try:
            result = yield from self.rpc.call(
                address, method, *args,
                request_size=request_size, response_size=response_size,
                timeout=self.timeout, retries=self.retries,
                deadline=self.deadline, policy=self.policy,
            )
        except RpcError:
            breaker.record_failure()
            raise
        breaker.record_success()
        return result

    def _ordered_replicas(self, key: bytes) -> List[str]:
        """The replica chain, healthy members first (stable order)."""
        chain = self.cluster.replicas_of(key)
        return (
            [a for a in chain if self.health[a]]
            + [a for a in chain if not self.health[a]]
        )

    def _mark_down(self, address: str) -> None:
        self.health[address] = False
        self.stats.marked_down.add(address)
        self.stats.replica_failures += 1

    # -- health probing ------------------------------------------------------
    def probe(self, address: str):
        """Process: one health probe; updates the health map.

        Probes bypass the breaker (they *are* the recovery mechanism): a
        verified success closes an open circuit immediately, a failed
        probe counts as breaker evidence like any failed call.
        """
        breaker = self.breakers[address]
        try:
            yield from self.rpc.call(
                address, "kv.ping", request_size=16, response_size=16,
                timeout=self.timeout, retries=0, deadline=self.timeout * 2,
            )
        except RpcError:
            self._mark_down(address)
            breaker.record_failure()
            return False
        self.health[address] = True
        breaker.record_success()
        return True

    def probe_all(self):
        """Process: sweep every DPU once (run periodically by the owner)."""
        alive = 0
        for address in self.cluster.addresses:
            ok = yield from self.probe(address)
            alive += 1 if ok else 0
        return alive

    # -- the KV surface ------------------------------------------------------
    def put(self, key: bytes, value: bytes):
        """Process: write the replica chain head-to-tail; one ack suffices
        for availability (skipped replicas are marked down for repair)."""
        key, value = bytes(key), bytes(value)
        pending = (self.history.invoke(self.name, "w", key, value)
                   if self.history is not None else None)
        acked = 0
        last_error: Optional[RpcError] = None
        for position, address in enumerate(self.cluster.replicas_of(key)):
            try:
                yield from self._call(
                    address, "kv.put", key, value,
                    request_size=32 + len(key) + len(value), response_size=16,
                )
            except CircuitOpenError:
                continue  # open circuit: fail over instantly, spend nothing
            except RpcError as error:
                self._mark_down(address)
                last_error = error
                continue
            self.health[address] = True
            acked += 1
            if position > 0 and acked == 1:
                self.stats.failovers += 1
        if acked == 0:
            self.stats.failed_ops += 1
            # Zero acks does not mean zero effect: a request may have
            # landed on a replica whose response frame was lost.
            if pending is not None:
                pending.indeterminate()
            raise DegradedError(f"put {key!r}: no replica reachable ({last_error})")
        self.stats.writes += 1
        if pending is not None:
            pending.ok()
        return acked

    def get(self, key: bytes, expected_value_size: int = 128):
        """Process: read from the first live replica, failing over down
        the chain when the preferred one is dead."""
        key = bytes(key)
        pending = (self.history.invoke(self.name, "r", key)
                   if self.history is not None else None)
        last_error: Optional[RpcError] = None
        head = self.cluster.replicas_of(key)[0]
        for address in self._ordered_replicas(key):
            try:
                value = yield from self._call(
                    address, "kv.get", key,
                    request_size=32 + len(key),
                    response_size=expected_value_size,
                )
            except CircuitOpenError:
                continue  # open circuit: fail over instantly, spend nothing
            except RpcError as error:
                self._mark_down(address)
                last_error = error
                continue
            self.health[address] = True
            if address != head:
                self.stats.failovers += 1
            self.stats.reads += 1
            if pending is not None:
                pending.ok(value)
            return value
        self.stats.failed_ops += 1
        if pending is not None:
            pending.fail()
        raise DegradedError(f"get {key!r}: no replica reachable ({last_error})")

    def delete(self, key: bytes):
        """Process: chain-wide delete (same walk as put)."""
        key = bytes(key)
        pending = (self.history.invoke(self.name, "d", key)
                   if self.history is not None else None)
        acked = 0
        for address in self.cluster.replicas_of(key):
            try:
                yield from self._call(
                    address, "kv.delete", key,
                    request_size=32 + len(key), response_size=16,
                )
            except CircuitOpenError:
                continue  # open circuit: fail over instantly, spend nothing
            except RpcError:
                self._mark_down(address)
                continue
            acked += 1
        if acked == 0:
            self.stats.failed_ops += 1
            if pending is not None:
                pending.indeterminate()
            raise DegradedError(f"delete {key!r}: no replica reachable")
        self.stats.writes += 1
        if pending is not None:
            pending.ok()
        return acked
