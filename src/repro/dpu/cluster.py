"""Distributed CPU-free applications over multiple DPUs (paper §2.4, §4).

The paper's C1/C2 workload split and discussion question 3: how to build
applications "executed over multiple DPUs"? Following the cited MICA
pattern, the cluster uses *client-driven request routing*: clients hash
keys to the owning DPU and talk to it directly — shared-nothing,
run-to-completion, with no coordinator in the data path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.hw.net import Network
from repro.hw.nvme import Namespace, NvmeController
from repro.sim import Simulator
from repro.storage.kvssd import KvSsd, KvSsdClient, KvSsdService
from repro.transport import RpcClient, RpcServer, UdpSocket


def _owner_index(key: bytes, count: int) -> int:
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big") % count


@dataclass
class ClusterStats:
    """Aggregate and per-DPU operation counts for a cluster."""

    routed_ops: int = 0
    per_dpu_ops: Optional[Dict[str, int]] = None


class DpuKvCluster:
    """N standalone KV-SSD DPUs behind client-driven routing."""

    def __init__(self, sim: Simulator, network: Network, dpu_count: int = 4,
                 ssd_blocks: int = 65536):
        if dpu_count < 1:
            raise ConfigurationError("need at least one DPU")
        self.sim = sim
        self.network = network
        self.addresses: List[str] = []
        self.devices: List[KvSsd] = []
        for index in range(dpu_count):
            address = f"kv-dpu-{index}"
            controller = NvmeController(sim, f"{address}-flash")
            controller.add_namespace(Namespace(1, ssd_blocks))
            device = KvSsd(sim, controller, memtable_limit=100_000)
            server = RpcServer(sim, UdpSocket(sim, network.endpoint(address)))
            KvSsdService(server, device)
            self.addresses.append(address)
            self.devices.append(device)

    def owner_of(self, key: bytes) -> str:
        return self.addresses[_owner_index(key, len(self.addresses))]

    def stats(self) -> ClusterStats:
        per_dpu = {
            address: device.gets + device.puts
            for address, device in zip(self.addresses, self.devices)
        }
        return ClusterStats(
            routed_ops=sum(per_dpu.values()), per_dpu_ops=per_dpu
        )

    def balance(self) -> float:
        """max/mean ops across DPUs — 1.0 is a perfect spread."""
        counts = [d.gets + d.puts for d in self.devices]
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0


class RoutingClient:
    """A client that owns the partition map (passive disaggregation: the
    smartness lives with the client, the DPUs only serve fast-path ops)."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 cluster: DpuKvCluster):
        self.cluster = cluster
        rpc = RpcClient(sim, UdpSocket(sim, network.endpoint(name)))
        self._stubs: Dict[str, KvSsdClient] = {
            address: KvSsdClient(rpc, address) for address in cluster.addresses
        }
        self.ops = 0

    def put(self, key: bytes, value: bytes):
        stub = self._stubs[self.cluster.owner_of(key)]
        yield from stub.put(key, value)
        self.ops += 1

    def get(self, key: bytes):
        stub = self._stubs[self.cluster.owner_of(key)]
        value = yield from stub.get(key)
        self.ops += 1
        return value

    def delete(self, key: bytes):
        stub = self._stubs[self.cluster.owner_of(key)]
        yield from stub.delete(key)
        self.ops += 1
