"""Live shard migration: add or drain a DPU without an outage.

The control plane of the scale-out data plane. A migration is a
simulated process:

1. plan the handoff against the *future* ring (``ring.with_node`` /
   ``ring.without_node``) — only keys whose owner changes move;
2. stream those keys source → destination in fixed-size **segments**
   (one ``shard.handoff`` RPC each), each value crossing the simulated
   network as a BACKGROUND-priority put so the overload machinery sheds
   migration traffic before user ops;
3. commit: place (or remove) the node on the live ring and bump the
   cluster epoch. Clients observe the epoch on their next op, re-route,
   and drop every cache entry filled under the old map.

Between (1) and (3) clients still route on the old ring; the source's
:class:`~repro.sharding.cluster.ShardForwarder` proxies ops for
already-moved keys, so mid-migration traffic pays at most one extra hop
— a latency event, never a failed op (E16 asserts exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.sharding.cluster import ShardedKvCluster
from repro.sim import Simulator
from repro.telemetry.tracing import NULL_SPAN
from repro.transport import RpcClient, UdpSocket

__all__ = ["ShardMigrator", "MigrationReport"]

#: Keys per handoff RPC — the migration's transfer unit ("segment").
DEFAULT_SEGMENT_KEYS = 8


@dataclass
class MigrationReport:
    """What one completed migration did.

    Attributes:
        node: the DPU that joined or left the ring.
        direction: ``"join"`` or ``"leave"``.
        keys_moved: values actually re-homed over the network.
        segments: ``shard.handoff`` RPCs issued.
        epoch: the routing epoch the commit produced.
        started/finished: simulated bounds of the migration window.
        per_source: keys moved out of each source DPU.
    """

    node: str
    direction: str
    keys_moved: int
    segments: int
    epoch: int
    started: float
    finished: float
    per_source: Dict[str, int]

    @property
    def duration(self) -> float:
        """Simulated seconds the migration window lasted."""
        return self.finished - self.started

    def line(self) -> str:
        """Canonical one-line form (same seed => same bytes)."""
        sources = ",".join(
            f"{source}:{count}" for source, count in self.per_source.items()
        )
        return (
            f"migration node={self.node} direction={self.direction} "
            f"keys={self.keys_moved} segments={self.segments} "
            f"epoch={self.epoch} duration={self.duration!r} "
            f"sources=[{sources}]"
        )


class ShardMigrator:
    """Drives live topology changes against a :class:`ShardedKvCluster`.

    Owns a control-plane RPC endpoint; data never flows through it —
    values move directly source → destination via ``shard.handoff``.

    Args:
        sim: the simulator.
        cluster: the cluster whose topology this migrator manages.
        segment_keys: keys per handoff RPC (the migration granularity:
            smaller segments interleave better with foreground traffic,
            larger ones finish the migration sooner).
        call_timeout / call_retries: per-RPC timeout and retransmit
            budget for the control-plane calls (``shard.keys``,
            ``shard.handoff``). The defaults wait forever — fine on a
            healthy fabric, but a chaos run that blackholes the source
            mid-handoff needs timeouts so the migration rides through
            the outage on retransmits (``shard.handoff`` is idempotent:
            re-sent segments skip keys already forwarded).
    """

    def __init__(self, sim: Simulator, cluster: ShardedKvCluster,
                 segment_keys: int = DEFAULT_SEGMENT_KEYS,
                 call_timeout: Optional[float] = None,
                 call_retries: int = 0):
        if segment_keys < 1:
            raise ConfigurationError("need at least one key per segment")
        self.sim = sim
        self.cluster = cluster
        self.segment_keys = segment_keys
        self.call_timeout = call_timeout
        self.call_retries = call_retries
        self.rpc = RpcClient(
            sim, UdpSocket(sim, cluster.network.endpoint("shard-migrator"))
        )
        self._metrics = sim.telemetry.unique_scope("shard.migrator")
        self._migrations = self._metrics.counter("migrations")
        self._keys_moved = self._metrics.counter("keys_moved")
        self._segments = self._metrics.counter("segments")
        self._recorder = getattr(sim, "recorder", None)
        self.reports: List[MigrationReport] = []
        #: Completion hooks: each callable receives the finished
        #: :class:`MigrationReport` synchronously, at the simulated
        #: instant the topology change commits. This is the
        #: control-plane surface autoscalers and tests subscribe to —
        #: hooks run in registration order and must not raise.
        self.on_migration: List[Callable[[MigrationReport], None]] = []

    def _traced(self, process):
        """Run a topology change as its own trace flow when sampled.

        A migration is a root flow (nothing upstream causes it), so the
        ``shard.migrate`` span and every handoff RPC under it share one
        trace — unless the migration itself was triggered from inside an
        already-traced flow, which it then joins.
        """
        tracer = self.sim.tracer
        if tracer.enabled and tracer.active_context is None:
            context = tracer.flow()
            if context is not None:
                return tracer.drive(process, context)
        return process

    # -- internals -----------------------------------------------------------
    def _list_keys(self, address: str):
        """Process: fetch one DPU's resident-key work list."""
        keys = yield from self.rpc.call(
            address, "shard.keys", request_size=32, response_size=1024,
            timeout=self.call_timeout, retries=self.call_retries,
        )
        return [bytes(key) for key in keys]

    def _handoff(self, source: str, dest: str, keys: List[bytes]):
        """Process: stream *keys* from *source* to *dest* in segments."""
        moved = segments = 0
        for start in range(0, len(keys), self.segment_keys):
            segment = keys[start:start + self.segment_keys]
            count = yield from self.rpc.call(
                source, "shard.handoff", dest, tuple(segment),
                request_size=64 + sum(16 + len(k) for k in segment),
                response_size=16,
                timeout=self.call_timeout, retries=self.call_retries,
            )
            moved += count
            segments += 1
            self._segments.inc()
        return moved, segments

    # -- the two topology changes --------------------------------------------
    def add_dpu(self):
        """Process: scale out — spawn a DPU, migrate its ranges in, commit.

        Returns the :class:`MigrationReport`; the new DPU serves its
        share of the keyspace from the commit's epoch onward.
        """
        return self._traced(self._add_dpu())

    def _add_dpu(self):
        cluster = self.cluster
        address = cluster.spawn_dpu()
        future = cluster.ring.with_node(address)
        started = self.sim.now
        per_source: Dict[str, int] = {}
        segments = 0
        tracer = self.sim.tracer
        span = tracer.span(
            "shard.migrate", "shard", node=address, direction="join",
        ) if tracer.enabled else NULL_SPAN
        with span:
            for source in cluster.ring.nodes:
                keys = yield from self._list_keys(source)
                moving = [k for k in keys if future.owner_of(k) == address]
                if not moving:
                    continue
                moved, chunks = yield from self._handoff(
                    source, address, moving
                )
                per_source[source] = moved
                segments += chunks
            epoch = cluster.commit_join(address)
        return self._finish(address, "join", per_source, segments,
                            epoch, started)

    def remove_dpu(self, address: str):
        """Process: drain — push every resident key to its next owner,
        then drop the DPU from the ring and commit.

        The drained DPU keeps running as a pure forwarding stub, so
        clients still routing on the old epoch lose nothing.
        """
        if address not in self.cluster.ring:
            raise ConfigurationError(f"{address} is not a ring member")
        if len(self.cluster.ring) < 2:
            raise ConfigurationError("cannot drain the last DPU")
        return self._traced(self._remove_dpu(address))

    def _remove_dpu(self, address: str):
        cluster = self.cluster
        future = cluster.ring.without_node(address)
        started = self.sim.now
        per_source: Dict[str, int] = {}
        segments = 0
        tracer = self.sim.tracer
        span = tracer.span(
            "shard.migrate", "shard", node=address, direction="leave",
        ) if tracer.enabled else NULL_SPAN
        with span:
            keys = yield from self._list_keys(address)
            # Group by future owner, preserving the sorted key order.
            by_dest: Dict[str, List[bytes]] = {}
            for key in keys:
                by_dest.setdefault(future.owner_of(key), []).append(key)
            for dest in sorted(by_dest):
                moved, chunks = yield from self._handoff(
                    address, dest, by_dest[dest]
                )
                per_source[address] = per_source.get(address, 0) + moved
                segments += chunks
            epoch = cluster.commit_leave(address)
        return self._finish(address, "leave", per_source, segments,
                            epoch, started)

    def _finish(self, node: str, direction: str, per_source: Dict[str, int],
                segments: int, epoch: int, started: float) -> MigrationReport:
        report = MigrationReport(
            node=node, direction=direction,
            keys_moved=sum(per_source.values()), segments=segments,
            epoch=epoch, started=started, finished=self.sim.now,
            per_source=per_source,
        )
        self._migrations.inc()
        self._keys_moved.inc(report.keys_moved)
        self.reports.append(report)
        if self._recorder is not None:
            self._recorder.record("migration", report.line())
        for hook in self.on_migration:
            hook(report)
        return report
