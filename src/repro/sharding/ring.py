"""Consistent-hash ring with virtual nodes (paper §2.4, Hyperion scale-out).

Modulo placement (``hash(key) % n``) reshuffles almost every key when
``n`` changes, so adding a DPU to a running cluster means re-homing the
whole keyspace — an outage, not a scaling event. A consistent-hash ring
moves only the keys that land on the new node's virtual-node arcs
(~``1/n`` of the keyspace), which is what makes live shard migration
(:mod:`repro.sharding.migration`) tractable.

Placement is fully deterministic: node positions come from
``blake2b(node#replica)`` and key lookups from ``blake2b(key)``, so the
same topology always yields the same owner on every machine and under
every ``PYTHONHASHSEED`` — the repo's byte-identical-per-seed contract.

>>> ring = HashRing(["dpu-0", "dpu-1", "dpu-2"])
>>> ring.owner_of(b"user:42") == ring.owner_of(b"user:42")
True
>>> sorted(ring.nodes)
['dpu-0', 'dpu-1', 'dpu-2']
>>> chain = ring.replicas_of(b"user:42", 2)
>>> len(chain) == 2 and chain[0] != chain[1]
True
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

from repro.common.errors import ConfigurationError

__all__ = ["HashRing", "DEFAULT_VNODES"]

#: Virtual nodes per physical node. Enough that the per-node keyspace
#: share concentrates (max/mean load stays under ~1.5 for realistic key
#: counts) while keeping ring rebuilds cheap.
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    """The ring position of *label*: a 64-bit blake2b digest."""
    digest = hashlib.blake2b(label.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _key_point(key: bytes) -> int:
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Deterministic consistent-hash ring with virtual nodes.

    Each physical node owns ``vnodes`` points on a 64-bit ring; a key is
    owned by the first point at or clockwise after ``blake2b(key)``.
    Replica chains walk further clockwise, skipping points of nodes
    already in the chain, so replicas always land on distinct physical
    nodes (when enough exist).

    >>> ring = HashRing(["a", "b"])
    >>> moved = HashRing.moved_keys(
    ...     ring, ring.with_node("c"),
    ...     [f"k{i}".encode() for i in range(100)])
    >>> 0 < len(moved) < 100   # only the new node's arcs move
    True
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ConfigurationError("need at least one virtual node")
        self.vnodes = vnodes
        #: Sorted ring points and their owning node, kept in lockstep.
        self._points: List[int] = []
        self._owners: List[str] = []
        #: Physical nodes in insertion order (deterministic iteration).
        self._nodes: Dict[str, None] = {}
        for node in nodes:
            self.add_node(node)

    # -- membership ----------------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        """Physical nodes, in the order they joined."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> None:
        """Place *node*'s virtual nodes on the ring."""
        if node in self._nodes:
            raise ConfigurationError(f"node {node!r} already on the ring")
        self._nodes[node] = None
        for replica in range(self.vnodes):
            point = _point(f"{node}#{replica}")
            at = bisect.bisect_left(self._points, point)
            # 64-bit collisions across distinct labels are effectively
            # impossible; break ties by name anyway so placement stays
            # total-ordered and deterministic.
            while (at < len(self._points) and self._points[at] == point
                   and self._owners[at] < node):
                at += 1
            self._points.insert(at, point)
            self._owners.insert(at, node)

    def remove_node(self, node: str) -> None:
        """Take *node*'s virtual nodes off the ring."""
        if node not in self._nodes:
            raise ConfigurationError(f"node {node!r} not on the ring")
        del self._nodes[node]
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != node]
        self._points = [p for p, __ in keep]
        self._owners = [o for __, o in keep]

    def with_node(self, node: str) -> "HashRing":
        """A copy of this ring with *node* added (the post-scale-out view)."""
        ring = HashRing(self._nodes, vnodes=self.vnodes)
        ring.add_node(node)
        return ring

    def without_node(self, node: str) -> "HashRing":
        """A copy of this ring with *node* removed (the drain target view)."""
        ring = HashRing(self._nodes, vnodes=self.vnodes)
        ring.remove_node(node)
        return ring

    # -- placement -----------------------------------------------------------
    def owner_of(self, key: bytes) -> str:
        """The physical node owning *key*."""
        return self.replicas_of(key, 1)[0]

    def replicas_of(self, key: bytes, count: int) -> List[str]:
        """The first *count* distinct nodes clockwise from the key's point.

        Raises :class:`~repro.common.errors.ConfigurationError` when the
        ring is empty or has fewer than *count* physical nodes.
        """
        if not self._nodes:
            raise ConfigurationError("ring has no nodes")
        if not 1 <= count <= len(self._nodes):
            raise ConfigurationError(
                f"need 1..{len(self._nodes)} replicas, got {count}"
            )
        start = bisect.bisect_left(self._points, _key_point(key))
        chain: List[str] = []
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in chain:
                chain.append(owner)
                if len(chain) == count:
                    break
        return chain

    # -- load accounting -----------------------------------------------------
    def load_of(self, keys: Iterable[bytes]) -> Dict[str, int]:
        """Keys per owning node (every node present, zero included)."""
        load = {node: 0 for node in self._nodes}
        for key in keys:
            load[self.owner_of(key)] += 1
        return load

    def skew(self, keys: Iterable[bytes]) -> float:
        """max/mean keys per node over *keys* — 1.0 is a perfect spread."""
        load = self.load_of(keys)
        mean = sum(load.values()) / len(load)
        return max(load.values()) / mean if mean else 1.0

    @staticmethod
    def moved_keys(old: "HashRing", new: "HashRing",
                   keys: Iterable[bytes]) -> List[Tuple[bytes, str, str]]:
        """Keys whose owner differs between two topologies.

        Returns ``(key, old_owner, new_owner)`` triples in input order —
        the handoff work list a live migration must transfer.
        """
        moved = []
        for key in keys:
            before, after = old.owner_of(key), new.owner_of(key)
            if before != after:
                moved.append((key, before, after))
        return moved
