"""An elastic sharded KV cluster whose DPUs can forward mid-migration.

The cluster side of the scale-out data plane. Every DPU serves the usual
``kv.*`` surface, but through a :class:`ShardForwarder` — a thin routing
layer in front of the device that knows which of its keys have been
handed off to another DPU and transparently proxies those ops over the
simulated network. That forwarding stub is what turns a topology change
into a latency event: a client routing on a stale shard map still gets
an answer, it just pays one extra hop until it observes the new epoch.

Topology is a :class:`~repro.sharding.ring.HashRing` plus a monotonic
**epoch**. Clients cache the epoch; :class:`~repro.sharding.migration.
ShardMigrator` bumps it exactly once per completed migration, which
atomically (in simulated time) retargets routing *and* invalidates every
:class:`~repro.sharding.cache.HotKeyCache` entry filled under the old
map.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.hw.net import Network
from repro.hw.nvme import Namespace, NvmeController
from repro.overload.admission import Priority
from repro.overload.queues import QueuePolicy
from repro.sharding.ring import DEFAULT_VNODES, HashRing
from repro.sim import Event, Simulator
from repro.storage.kvssd import KvSsd
from repro.telemetry.tracing import NULL_SPAN
from repro.transport import RpcClient, RpcServer, UdpSocket

__all__ = ["ShardedKvCluster", "ShardForwarder"]


class _KeyLocks:
    """FIFO per-key mutexes serializing device access on one DPU.

    A handoff must not copy a key while a client op is mid-flight
    against it (the op's device write would land *after* the copy and be
    lost), and a client op must not read a key mid-copy. Both sides take
    the key's lock around their device/forward work; waiters resume in
    arrival order, so contention is deterministic.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        #: key -> waiter queue; presence in the dict means "locked".
        self._locks: Dict[bytes, Deque[Event]] = {}
        self.contended = 0

    def acquire(self, key: bytes):
        """Process: take the key's lock (returns immediately when free)."""
        waiters = self._locks.get(key)
        if waiters is None:
            self._locks[key] = deque()
            return
        self.contended += 1
        gate = Event(self.sim)
        waiters.append(gate)
        yield gate

    def release(self, key: bytes) -> None:
        """Hand the lock to the next waiter, or free it."""
        waiters = self._locks[key]
        if waiters:
            waiters.popleft().succeed()
        else:
            del self._locks[key]


class ShardForwarder:
    """The per-DPU forwarding stub: local service + handoff + proxying.

    Registers the ``kv.get/put/delete/ping`` surface plus the two
    migration verbs (``shard.keys``, ``shard.handoff``) on the DPU's RPC
    server. Ops for keys this DPU handed off are proxied to the new
    owner over the DPU's own egress socket; ops for keys *mid-handoff*
    wait on a per-key gate until the handoff completes (at most one
    value-copy round trip), so no window exists where a key is servable
    by nobody.
    """

    def __init__(self, sim: Simulator, network: Network, address: str,
                 device: KvSsd, server: RpcServer):
        self.sim = sim
        self.address = address
        self.device = device
        #: key -> the DPU now owning it (populated by handoffs).
        self.forward: Dict[bytes, str] = {}
        self._locks = _KeyLocks(sim)
        self.rpc = RpcClient(
            sim, UdpSocket(sim, network.endpoint(f"{address}.fwd"))
        )
        self._metrics = sim.telemetry.unique_scope(f"shard.forwarder.{address}")
        self._forwarded = self._metrics.counter("forwarded_ops")
        self._gated = self._metrics.counter("gated_ops")
        self._handoffs = self._metrics.counter("handoffs")
        self._keys_handed_off = self._metrics.counter("keys_handed_off")
        self._bytes_handed_off = self._metrics.counter("bytes_handed_off")
        self._forward_entries = self._metrics.gauge("forward_entries")
        server.register("kv.get", self._get)
        server.register("kv.put", self._put)
        server.register("kv.delete", self._delete)
        server.register("kv.ping", lambda: True)
        server.register("shard.keys", self._keys)
        server.register("shard.handoff", self._handoff)
        server.register("shard.receive", self._receive)

    # -- read-through counters -----------------------------------------------
    @property
    def forwarded_ops(self) -> int:
        """Ops proxied to another DPU because the key was handed off."""
        return self._forwarded.value

    @property
    def keys_handed_off(self) -> int:
        """Keys this DPU has migrated away."""
        return self._keys_handed_off.value

    # -- the locked, forwarding kv surface -----------------------------------
    def _route(self, key: bytes):
        """Process: take the key's lock; on a forwarded key, release it
        and return the destination instead.

        The lock only guards *local device* access against a concurrent
        handoff copy. A forwarded op never touches the device, and
        holding the lock across the proxy RPC would deadlock with a
        drain handing the key back (the peer holds its own key lock
        while it waits on our ``shard.receive``), so the lock is dropped
        before the hop. Mid-proxy ownership changes are safe: the op
        just chases one more forwarding entry at the destination.
        """
        contended = self._locks.contended
        yield from self._locks.acquire(key)
        if self._locks.contended > contended:
            self._gated.inc()
        dest = self.forward.get(key)
        if dest is not None:
            self._locks.release(key)
            self._forwarded.inc()
        return dest

    def _get(self, key: bytes):
        """Process: serve a get locally, or proxy it to the new owner."""
        key = bytes(key)
        dest = yield from self._route(key)
        if dest is not None:
            value = yield from self.rpc.call(
                dest, "kv.get", key,
                request_size=32 + len(key), response_size=128,
            )
            return value
        try:
            value = yield from self.device.get(key)
            return value
        finally:
            self._locks.release(key)

    def _put(self, key: bytes, value: bytes):
        """Process: apply a put locally, or proxy it to the new owner."""
        key, value = bytes(key), bytes(value)
        dest = yield from self._route(key)
        if dest is not None:
            yield from self.rpc.call(
                dest, "kv.put", key, value,
                request_size=32 + len(key) + len(value), response_size=16,
            )
            return True
        try:
            yield from self.device.put(key, value)
            return True
        finally:
            self._locks.release(key)

    def _delete(self, key: bytes):
        """Process: apply a delete locally, or proxy it to the new owner."""
        key = bytes(key)
        dest = yield from self._route(key)
        if dest is not None:
            yield from self.rpc.call(
                dest, "kv.delete", key,
                request_size=32 + len(key), response_size=16,
            )
            return True
        try:
            yield from self.device.delete(key)
            return True
        finally:
            self._locks.release(key)

    # -- migration verbs -----------------------------------------------------
    def _keys(self):
        """All keys resident on this DPU, sorted (the migration work list)."""
        return [key for key, __ in self.device.lsm.items()
                if key not in self.forward]

    def _receive(self, key: bytes, value: bytes):
        """Process: accept a handed-off value as the key's new owner.

        Distinct from ``kv.put`` on purpose: a received key becomes
        *locally resident*, so any stale forwarding entry for it (left
        by an earlier migration that moved the key away) is cleared
        rather than followed — following it would bounce the copy back
        to the node currently handing the key off, which holds the
        key's lock and is waiting on this very RPC.
        """
        key = bytes(key)
        yield from self._locks.acquire(key)
        try:
            if self.forward.pop(key, None) is not None:
                self._forward_entries.set(len(self.forward))
            yield from self.device.put(key, bytes(value))
            return True
        finally:
            self._locks.release(key)

    def _handoff(self, dest: str, keys):
        """Process: move one segment of keys to *dest*, gating each key.

        Per key: read the local value, push it to *dest* as a
        BACKGROUND-priority put over the network, drop it locally, then
        point the forwarding table at *dest* and release the gate. Ops
        that arrived for the key mid-copy resume and follow the
        forwarding entry.
        """
        moved = 0
        tracer = self.sim.tracer
        span = tracer.span(
            "shard.handoff", "shard",
            source=self.address, dest=dest, keys=len(keys),
        ) if tracer.enabled else NULL_SPAN
        with span:
            for key in keys:
                key = bytes(key)
                yield from self._locks.acquire(key)
                try:
                    if key in self.forward:
                        continue
                    value = yield from self.device.get(key)
                    if value is not None:
                        yield from self.rpc.call(
                            dest, "shard.receive", key, value,
                            request_size=32 + len(key) + len(value),
                            response_size=16,
                            priority=int(Priority.BACKGROUND),
                        )
                        self._bytes_handed_off.inc(len(key) + len(value))
                        yield from self.device.delete(key)
                    self.forward[key] = dest
                    moved += 1
                finally:
                    self._locks.release(key)
            self._handoffs.inc()
            self._keys_handed_off.inc(moved)
            self._forward_entries.set(len(self.forward))
        return moved


class ShardedKvCluster:
    """KV-SSD DPUs on a consistent-hash ring with elastic membership.

    Unlike :class:`~repro.dpu.cluster.DpuKvCluster` (static membership,
    plain :class:`~repro.storage.kvssd.KvSsdService`), every DPU here
    sits behind a :class:`ShardForwarder` and the cluster carries a
    routing **epoch** that :class:`~repro.sharding.migration.
    ShardMigrator` advances on every completed topology change.

    Args:
        sim: the simulator everything runs on.
        network: the shared star network.
        dpu_count: initial members (more can join live via the migrator).
        ssd_blocks: flash capacity per DPU namespace.
        vnodes: virtual nodes per DPU on the hash ring.
        queue_capacity: per-DPU RPC queue bound (``None`` = unbounded
            dispatch); with a bound, ``workers`` run-to-completion
            workers drain it — the wimpy-core service model E16 scales.
        workers: worker processes per bounded server (min 2 so client
            traffic still flows while a worker performs a handoff).
        queue_policy: drop discipline for the bounded per-DPU queue
            (:class:`~repro.overload.QueuePolicy`). FIFO refuses at the
            tail when full; CODEL additionally drops requests whose
            sojourn exceeds ``codel_target`` for ``codel_interval`` —
            the overload-plane knob that keeps *served* latency bounded
            when an open-loop ramp outruns the fleet (E20 relies on it
            so an SLO breach reads as shed work, not unbounded p99).
        codel_target / codel_interval: CoDel tuning, forwarded to each
            DPU's :class:`~repro.transport.RpcServer`; ignored for
            FIFO/LIFO queues.
        name: address prefix for this cluster's DPUs (``{name}-dpu-N``).
            The default keeps single-cluster deployments unchanged; a
            geo-replicated deployment gives each region a distinct name
            so addresses stay globally unique across the WAN fabric.
    """

    def __init__(self, sim: Simulator, network: Network, dpu_count: int = 4,
                 ssd_blocks: int = 16384, vnodes: int = DEFAULT_VNODES,
                 queue_capacity: Optional[int] = None, workers: int = 2,
                 queue_policy: QueuePolicy = QueuePolicy.FIFO,
                 codel_target: float = 5e-3, codel_interval: float = 10e-3,
                 name: str = "shard"):
        if dpu_count < 1:
            raise ConfigurationError("need at least one DPU")
        if not name:
            raise ConfigurationError("cluster name must be non-empty")
        if queue_capacity is not None and workers < 2:
            raise ConfigurationError(
                "bounded sharded servers need >= 2 workers (one may block "
                "on a handoff)"
            )
        self.sim = sim
        self.network = network
        self.name = name
        self.ssd_blocks = ssd_blocks
        self.queue_capacity = queue_capacity
        self.workers = workers
        self.queue_policy = queue_policy
        self.codel_target = codel_target
        self.codel_interval = codel_interval
        self.ring = HashRing(vnodes=vnodes)
        #: Monotonic routing-topology version; bumped by the migrator.
        self.epoch = 1
        self.addresses: List[str] = []
        self.devices: Dict[str, KvSsd] = {}
        self.servers: Dict[str, RpcServer] = {}
        self.forwarders: Dict[str, ShardForwarder] = {}
        scope = ("shard.cluster" if name == "shard"
                 else f"shard.cluster.{name}")
        self._metrics = sim.telemetry.unique_scope(scope)
        self._nodes_gauge = self._metrics.gauge("nodes")
        self._epoch_gauge = self._metrics.gauge("epoch")
        self._epoch_gauge.set(self.epoch)
        for index in range(dpu_count):
            address = self.spawn_dpu()
            self.ring.add_node(address)
        self._nodes_gauge.set(len(self.ring))

    def spawn_dpu(self) -> str:
        """Stand up one DPU (device + server + forwarder), *off* the ring.

        The new DPU serves immediately but owns no keys until a
        :class:`~repro.sharding.migration.ShardMigrator` migrates ranges
        onto it and commits the new topology.
        """
        address = f"{self.name}-dpu-{len(self.addresses)}"
        controller = NvmeController(self.sim, f"{address}-flash")
        controller.add_namespace(Namespace(1, self.ssd_blocks))
        device = KvSsd(self.sim, controller, memtable_limit=100_000)
        server = RpcServer(
            self.sim, UdpSocket(self.sim, self.network.endpoint(address)),
            queue_capacity=self.queue_capacity, workers=self.workers,
            queue_policy=self.queue_policy,
            codel_target=self.codel_target,
            codel_interval=self.codel_interval,
        )
        forwarder = ShardForwarder(self.sim, self.network, address, device,
                                   server)
        self.addresses.append(address)
        self.devices[address] = device
        self.servers[address] = server
        self.forwarders[address] = forwarder
        return address

    # -- topology ------------------------------------------------------------
    def members(self) -> List[str]:
        """Active ring members, in join order."""
        return self.ring.nodes

    def owner_of(self, key: bytes) -> str:
        """The DPU owning *key* under the current epoch's ring."""
        return self.ring.owner_of(key)

    def commit_join(self, address: str) -> int:
        """Place an already-migrated DPU on the ring; returns the epoch."""
        self.ring.add_node(address)
        return self._bump()

    def commit_leave(self, address: str) -> int:
        """Drop a drained DPU from the ring; returns the new epoch."""
        self.ring.remove_node(address)
        return self._bump()

    def _bump(self) -> int:
        self.epoch += 1
        self._epoch_gauge.set(self.epoch)
        self._nodes_gauge.set(len(self.ring))
        return self.epoch

    # -- introspection -------------------------------------------------------
    def resident_keys(self, address: str) -> List[bytes]:
        """Keys physically resident on one DPU (sorted, minus forwards)."""
        return self.forwarders[address]._keys()

    def balance(self) -> float:
        """max/mean resident keys across ring members; 1.0 is perfect."""
        counts = [len(self.resident_keys(a)) for a in self.ring.nodes]
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0
