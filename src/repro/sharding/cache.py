"""Client-side hot-key cache with lease/epoch invalidation.

The scale-out data plane's third leg (after sharding and batching): a
client that re-reads the same hot keys should not pay a network round
trip per read. The cache is *coherent by construction* against the two
ways a cached value can go stale:

* **Leases** bound staleness from concurrent writers: every fill carries
  a lease; a hit after the lease expires (on the simulated clock) is a
  miss, forcing a re-read. This is the classic lease discipline — the
  server never tracks readers, the reader just promises not to trust a
  value for longer than the lease.
* **Epochs** handle topology changes: every fill is stamped with the
  routing epoch it was read under. Live shard migration bumps the
  cluster epoch, so every entry cached against the old shard map is
  invalid the moment the new map is visible — a migrated key can never
  serve a value read from its old home.

Entries are evicted LRU once ``capacity`` is reached. All counters land
in ``cache.*`` telemetry scopes.

>>> class _Clock:
...     now = 0.0
>>> cache = HotKeyCache(_Clock(), capacity=2, lease=1.0)
>>> cache.fill(b"k", b"v", epoch=1)
>>> cache.lookup(b"k", epoch=1)
b'v'
>>> cache.lookup(b"k", epoch=2) is None   # migration bumped the epoch
True
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.telemetry import MetricScope

__all__ = ["HotKeyCache", "CacheEntry"]


@dataclass
class CacheEntry:
    """One cached value: payload, lease expiry, fill-time routing epoch."""

    value: bytes
    expires: float
    epoch: int


class HotKeyCache:
    """A bounded LRU read cache keyed by lease expiry and routing epoch.

    Args:
        clock: anything exposing ``now`` (usually the simulator).
        capacity: maximum resident entries; LRU eviction beyond it.
        lease: seconds (simulated) a fill may be trusted.
        metrics: telemetry scope for ``hits/misses/...`` counters; a
            standalone ``cache`` scope when omitted.
    """

    def __init__(self, clock, capacity: int = 128, lease: float = 5e-3,
                 metrics: Optional[MetricScope] = None):
        if capacity < 1:
            raise ConfigurationError("cache capacity must be >= 1")
        if lease <= 0:
            raise ConfigurationError("cache lease must be positive")
        self.clock = clock
        self.capacity = capacity
        self.lease = lease
        self._entries: "OrderedDict[bytes, CacheEntry]" = OrderedDict()
        metrics = (
            metrics if metrics is not None
            else MetricScope.standalone("cache")
        )
        self._hits = metrics.counter("hits")
        self._misses = metrics.counter("misses")
        self._lease_expired = metrics.counter("lease_expired")
        self._epoch_invalidated = metrics.counter("epoch_invalidated")
        self._evicted = metrics.counter("evicted")
        self._invalidated = metrics.counter("invalidated")
        self._size = metrics.gauge("size")

    # -- counters (read-through) ---------------------------------------------
    @property
    def hits(self) -> int:
        """Lookups served from a live, epoch-valid entry."""
        return self._hits.value

    @property
    def misses(self) -> int:
        """Lookups that found nothing servable (cold, expired, or stale)."""
        return self._misses.value

    @property
    def evicted(self) -> int:
        """Entries evicted by the LRU capacity bound."""
        return self._evicted.value

    def __len__(self) -> int:
        return len(self._entries)

    def hit_rate(self) -> float:
        """hits / (hits + misses), 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- the cache surface ---------------------------------------------------
    def lookup(self, key: bytes, epoch: int) -> Optional[bytes]:
        """The cached value, or ``None`` on miss/expiry/epoch mismatch.

        Args:
            key: the key being read.
            epoch: the reader's *current* routing epoch; entries filled
                under an older epoch are discarded (topology changed
                under them).
        """
        entry = self._entries.get(key)
        if entry is None:
            self._misses.inc()
            return None
        if entry.epoch != epoch:
            del self._entries[key]
            self._epoch_invalidated.inc()
            self._misses.inc()
            self._size.set(len(self._entries))
            return None
        if self.clock.now >= entry.expires:
            del self._entries[key]
            self._lease_expired.inc()
            self._misses.inc()
            self._size.set(len(self._entries))
            return None
        self._entries.move_to_end(key)
        self._hits.inc()
        return entry.value

    def fill(self, key: bytes, value: bytes, epoch: int) -> None:
        """Install a freshly-read value under the reader's epoch."""
        self._entries[key] = CacheEntry(
            value=value, expires=self.clock.now + self.lease, epoch=epoch,
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evicted.inc()
        self._size.set(len(self._entries))

    def invalidate(self, key: bytes) -> None:
        """Drop one key (the caller wrote or deleted it)."""
        if self._entries.pop(key, None) is not None:
            self._invalidated.inc()
            self._size.set(len(self._entries))

    def invalidate_epoch(self, before: int) -> int:
        """Eagerly drop every entry filled under an epoch older than
        *before*; returns how many were dropped. (Lazy per-lookup epoch
        checks make this optional — it just reclaims space sooner.)"""
        stale = [k for k, e in self._entries.items() if e.epoch < before]
        for key in stale:
            del self._entries[key]
            self._epoch_invalidated.inc()
        if stale:
            self._size.set(len(self._entries))
        return len(stale)
