"""The scale-out KV client: ring routing + hot-key cache + batched RPC.

The client side of the scale-out data plane. A
:class:`ShardedKvClient` owns one egress socket and, per op, does three
things the naive per-op client cannot:

* **route** on the cluster's shared :class:`~repro.sharding.ring.
  HashRing` — no directory service, no lookup round trip;
* **cache** hot values under a lease, tagged with the routing epoch so
  one migration commit invalidates every stale entry at once;
* **batch** multi-key ops (:meth:`get_many` / :meth:`put_many`) into
  one :meth:`~repro.transport.RpcClient.call_batch` round trip per
  owner per ``batch_limit`` keys — one wire request, one admission
  token, one queue slot for the whole segment.

E16 sweeps these knobs: the ≥4× 8-DPU goodput target only holds with
batching and caching on, which is the point.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.sharding.cache import HotKeyCache
from repro.sharding.cluster import ShardedKvCluster
from repro.sim import Simulator
from repro.transport import BatchOp, MAX_BATCH_OPS, RpcClient, RpcError, UdpSocket

__all__ = ["ShardedKvClient"]


class ShardedKvClient:
    """One tenant's handle onto a :class:`ShardedKvCluster`.

    Args:
        sim: the simulator.
        cluster: the cluster to route against. The client reads the
            cluster's live ring and epoch on **every** op, so it follows
            topology changes as soon as they commit — between a handoff
            and the commit it routes to the old owner, whose forwarding
            stub proxies the op.
        name: unique suffix for this client's endpoint and metrics.
        cache: optional :class:`~repro.sharding.cache.HotKeyCache`;
            ``None`` disables client-side caching entirely.
        batch_limit: max ops coalesced into one wire request by the
            multi-key paths (clamped to the transport's
            :data:`~repro.transport.MAX_BATCH_OPS`).
        timeout / retries / deadline: per-call wire timing for the
            single-key ops. The defaults wait forever — right for a
            healthy fabric; chaos runs set them so an op parked on a
            blackholed DPU resolves as a *failed* (read) or
            *indeterminate* (write) outcome instead of wedging its
            client process.
        history: optional :class:`~repro.verify.HistoryRecorder`; when
            set, the single-key ops record invoke/outcome on the sim
            clock for consistency checking.
    """

    def __init__(self, sim: Simulator, cluster: ShardedKvCluster,
                 name: str = "client", *,
                 cache: Optional[HotKeyCache] = None,
                 batch_limit: int = 16,
                 timeout: Optional[float] = None,
                 retries: int = 0,
                 deadline: Optional[float] = None,
                 history=None):
        if not 1 <= batch_limit <= MAX_BATCH_OPS:
            raise ConfigurationError(
                f"batch_limit must be in 1..{MAX_BATCH_OPS}"
            )
        self.sim = sim
        self.cluster = cluster
        self.name = name
        self.cache = cache
        self.batch_limit = batch_limit
        self.timeout = timeout
        self.retries = retries
        self.deadline = deadline
        self.history = history
        self.rpc = RpcClient(
            sim, UdpSocket(sim, cluster.network.endpoint(f"shard-client-{name}"))
        )
        self._metrics = sim.telemetry.unique_scope(f"shard.client.{name}")
        self._ops = self._metrics.counter("ops")
        self._round_trips = self._metrics.counter("round_trips")
        self._cache_served = self._metrics.counter("cache_served")

    # -- read-through counters -------------------------------------------------
    @property
    def ops(self) -> int:
        """Logical KV operations completed by this client."""
        return self._ops.value

    @property
    def round_trips(self) -> int:
        """Wire round trips issued (batching makes this < :attr:`ops`)."""
        return self._round_trips.value

    # -- single-key ops --------------------------------------------------------
    def get(self, key: bytes, *, priority: int = 0):
        """Process: read one key (cache → owner DPU), returns the value."""
        key = bytes(key)
        epoch = self.cluster.epoch
        if self.cache is not None:
            cached = self.cache.lookup(key, epoch)
            if cached is not None:
                self._ops.inc()
                self._cache_served.inc()
                return cached
        owner = self.cluster.owner_of(key)
        pending = (self.history.invoke(self.name, "r", key)
                   if self.history is not None else None)
        try:
            value = yield from self.rpc.call(
                owner, "kv.get", key,
                request_size=32 + len(key), response_size=128,
                priority=priority, timeout=self.timeout,
                retries=self.retries, deadline=self.deadline,
            )
        except RpcError:
            if pending is not None:
                pending.fail()
            raise
        self._ops.inc()
        self._round_trips.inc()
        if self.cache is not None and value is not None:
            self.cache.fill(key, value, epoch)
        if pending is not None:
            pending.ok(value)
        return value

    def put(self, key: bytes, value: bytes, *, priority: int = 0):
        """Process: write one key to its owner; invalidates the cache."""
        key, value = bytes(key), bytes(value)
        owner = self.cluster.owner_of(key)
        pending = (self.history.invoke(self.name, "w", key, value)
                   if self.history is not None else None)
        try:
            yield from self.rpc.call(
                owner, "kv.put", key, value,
                request_size=32 + len(key) + len(value), response_size=16,
                priority=priority, timeout=self.timeout,
                retries=self.retries, deadline=self.deadline,
            )
        except RpcError:
            # The request (or only its ack) may have been lost: the
            # write may have landed. Never record it as a clean failure.
            if pending is not None:
                pending.indeterminate()
            raise
        self._ops.inc()
        self._round_trips.inc()
        if self.cache is not None:
            self.cache.invalidate(key)
        if pending is not None:
            pending.ok()
        return True

    def delete(self, key: bytes, *, priority: int = 0):
        """Process: delete one key at its owner; invalidates the cache."""
        key = bytes(key)
        owner = self.cluster.owner_of(key)
        pending = (self.history.invoke(self.name, "d", key)
                   if self.history is not None else None)
        try:
            yield from self.rpc.call(
                owner, "kv.delete", key,
                request_size=32 + len(key), response_size=16,
                priority=priority, timeout=self.timeout,
                retries=self.retries, deadline=self.deadline,
            )
        except RpcError:
            if pending is not None:
                pending.indeterminate()
            raise
        self._ops.inc()
        self._round_trips.inc()
        if self.cache is not None:
            self.cache.invalidate(key)
        if pending is not None:
            pending.ok()
        return True

    # -- batched multi-key ops -------------------------------------------------
    def _group_by_owner(
        self, keys: Sequence[bytes]
    ) -> "List[Tuple[str, List[int]]]":
        """Partition key *positions* by owning DPU, preserving order."""
        groups: Dict[str, List[int]] = {}
        for position, key in enumerate(keys):
            groups.setdefault(self.cluster.owner_of(key), []).append(position)
        return list(groups.items())

    def _scatter(self, thunks):
        """Process: run sub-batch processes concurrently, join them all.

        The pipelined half of batching: per-owner sub-batches of one
        multi-key op travel in parallel, so the op's latency is the
        *slowest* owner's round trip, not the sum — without this, a
        batch spanning many DPUs serializes and scaling flattens. The
        first sub-batch failure is re-raised after every sub-batch has
        settled (no orphaned in-flight work).
        """
        errors: List[RpcError] = []

        def runner(thunk):
            try:
                yield from thunk()
            except RpcError as error:
                errors.append(error)

        for process in [self.sim.process(runner(t)) for t in thunks]:
            yield process
        if errors:
            raise errors[0]

    def get_many(self, keys: Iterable[bytes], *, priority: int = 0):
        """Process: read many keys with batched, owner-grouped RPCs.

        Returns values aligned with *keys* (``None`` for absent keys).
        Cache hits are served locally; only misses go to the wire, one
        ``call_batch`` per owner per :attr:`batch_limit` misses.
        """
        keys = [bytes(key) for key in keys]
        epoch = self.cluster.epoch
        values: List[object] = [None] * len(keys)
        misses: List[int] = []
        for position, key in enumerate(keys):
            if self.cache is not None:
                cached = self.cache.lookup(key, epoch)
                if cached is not None:
                    values[position] = cached
                    self._cache_served.inc()
                    continue
            misses.append(position)
        def fetch(owner, chunk):
            ops = [
                BatchOp("kv.get", (keys[p],),
                        request_size=32 + len(keys[p]),
                        response_size=128)
                for p in chunk
            ]
            responses = yield from self.rpc.call_batch(
                owner, ops, priority=priority,
            )
            self._round_trips.inc()
            for p, response in zip(chunk, responses):
                if not response.ok:
                    raise RpcError(response.error)
                values[p] = response.result
                if self.cache is not None and response.result is not None:
                    self.cache.fill(keys[p], response.result, epoch)

        thunks = []
        for owner, positions in self._group_by_owner(
            [keys[p] for p in misses]
        ):
            actual = [misses[p] for p in positions]
            for start in range(0, len(actual), self.batch_limit):
                chunk = actual[start:start + self.batch_limit]
                thunks.append(
                    lambda owner=owner, chunk=chunk: fetch(owner, chunk)
                )
        if thunks:
            yield from self._scatter(thunks)
        self._ops.inc(len(keys))
        return values

    def put_many(self, pairs: Iterable[Tuple[bytes, bytes]], *,
                 priority: int = 0):
        """Process: write many pairs with batched, owner-grouped RPCs."""
        pairs = [(bytes(k), bytes(v)) for k, v in pairs]

        def push(owner, chunk):
            ops = [
                BatchOp("kv.put", pairs[p],
                        request_size=32 + len(pairs[p][0])
                        + len(pairs[p][1]),
                        response_size=16)
                for p in chunk
            ]
            responses = yield from self.rpc.call_batch(
                owner, ops, priority=priority,
            )
            self._round_trips.inc()
            for p, response in zip(chunk, responses):
                if not response.ok:
                    raise RpcError(response.error)
                if self.cache is not None:
                    self.cache.invalidate(pairs[p][0])

        thunks = []
        for owner, positions in self._group_by_owner([k for k, _ in pairs]):
            for start in range(0, len(positions), self.batch_limit):
                chunk = positions[start:start + self.batch_limit]
                thunks.append(
                    lambda owner=owner, chunk=chunk: push(owner, chunk)
                )
        if thunks:
            yield from self._scatter(thunks)
        self._ops.inc(len(pairs))
        return True
