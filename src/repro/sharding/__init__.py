"""The scale-out data plane: sharding, live migration, batching, caching.

Paper §2.4's multi-DPU workload class only pays off at rack scale, where
many wimpy DPUs jointly serve what one brawny host did. This package is
the client/coordination machinery that makes that scaling real:

* :class:`HashRing` — consistent hashing with virtual nodes, the
  deterministic placement function every cluster and client shares;
* :class:`ShardedKvCluster` / :class:`ShardMigrator` — elastic cluster
  membership: a DPU added or drained mid-run hands its key ranges off
  over the simulated network while a forwarding stub keeps serving
  in-flight keys (a topology change is a latency event, not an outage);
* :class:`HotKeyCache` — a client-side lease/epoch cache that stays
  coherent across migrations;
* :class:`ShardedKvClient` — ring routing + the cache + batched RPC
  (:meth:`repro.transport.RpcClient.call_batch`) in one client.

E16 (:mod:`repro.eval.scaleout`, ``make scaleout``) measures the result:
aggregate throughput vs DPU count with and without batching+caching, and
a mid-run scale-out event with zero failed ops.
"""

from repro.sharding.cache import CacheEntry, HotKeyCache
from repro.sharding.cluster import ShardedKvCluster, ShardForwarder
from repro.sharding.client import ShardedKvClient
from repro.sharding.migration import MigrationReport, ShardMigrator
from repro.sharding.ring import DEFAULT_VNODES, HashRing

__all__ = [
    "HashRing",
    "DEFAULT_VNODES",
    "HotKeyCache",
    "CacheEntry",
    "ShardedKvCluster",
    "ShardForwarder",
    "ShardedKvClient",
    "ShardMigrator",
    "MigrationReport",
]
