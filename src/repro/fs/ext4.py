"""HyperExt: a compact ext4-like file system (extents, inode table).

On-disk layout (4 KiB blocks)::

    block 0          superblock
    blocks 1..N      inode table (64 inodes/block, 64 B inodes)
    blocks N+1..     data blocks (files, directories)

Inode (64 bytes): mode u32 | size u64 | extent_count u32 | 4 extents of
(logical u32, physical u32, length u32). Directory data: entry count u32,
then (name_len u16, name, inode u32) records. Everything is real bytes on
the namespace, so the annotation walker (spiffy.py) can parse it back with
zero knowledge of this module.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.common.errors import CapacityError, ConfigurationError, ProtocolError
from repro.datastruct.extent import Extent, ExtentTree
from repro.hw.nvme.namespace import LBA_SIZE, Namespace

MAGIC = 0x48595045  # "HYPE"
MODE_FILE = 1
MODE_DIR = 2
INODE_SIZE = 64
INODES_PER_BLOCK = LBA_SIZE // INODE_SIZE
MAX_EXTENTS = 4
ROOT_INODE = 0

_SUPERBLOCK = struct.Struct("<IIIII")  # magic, blocks, itable_start, itable_blocks, data_start
_INODE_HEAD = struct.Struct("<IQI")  # mode, size, extent_count
_EXTENT = struct.Struct("<III")


class HyperExtFs:
    """Create/read files and directories on a :class:`Namespace`."""

    def __init__(self, namespace: Namespace):
        self.namespace = namespace

    # -- formatting ------------------------------------------------------------
    @classmethod
    def mkfs(cls, namespace: Namespace, inode_blocks: int = 4) -> "HyperExtFs":
        data_start = 1 + inode_blocks
        if namespace.capacity_blocks <= data_start:
            raise CapacityError("namespace too small for HyperExt")
        sb = _SUPERBLOCK.pack(
            MAGIC, namespace.capacity_blocks, 1, inode_blocks, data_start
        )
        namespace.write_blocks(0, sb)
        fs = cls(namespace)
        # Root directory: inode 0, initially empty.
        fs._write_inode(ROOT_INODE, MODE_DIR, 0, [])
        fs._set_alloc_cursor(data_start)
        return fs

    # -- superblock ------------------------------------------------------------
    def superblock(self) -> Dict[str, int]:
        raw = self.namespace.read_blocks(0, 1)
        magic, blocks, itable_start, itable_blocks, data_start = _SUPERBLOCK.unpack(
            raw[: _SUPERBLOCK.size]
        )
        if magic != MAGIC:
            raise ProtocolError("not a HyperExt file system")
        return {
            "magic": magic,
            "blocks": blocks,
            "inode_table_start": itable_start,
            "inode_table_blocks": itable_blocks,
            "data_start": data_start,
        }

    # Allocation cursor lives at a fixed offset in the superblock block.
    _CURSOR_OFFSET = 64

    def _set_alloc_cursor(self, value: int) -> None:
        raw = bytearray(self.namespace.read_blocks(0, 1))
        raw[self._CURSOR_OFFSET : self._CURSOR_OFFSET + 4] = struct.pack("<I", value)
        self.namespace.write_blocks(0, bytes(raw))

    def _alloc_blocks(self, count: int) -> int:
        raw = bytearray(self.namespace.read_blocks(0, 1))
        (cursor,) = struct.unpack_from("<I", raw, self._CURSOR_OFFSET)
        sb = self.superblock()
        if cursor + count > sb["blocks"]:
            raise CapacityError("file system full")
        struct.pack_into("<I", raw, self._CURSOR_OFFSET, cursor + count)
        self.namespace.write_blocks(0, bytes(raw))
        return cursor

    # -- inodes ------------------------------------------------------------
    def _inode_location(self, inode: int) -> Tuple[int, int]:
        sb = self.superblock()
        if inode >= sb["inode_table_blocks"] * INODES_PER_BLOCK:
            raise CapacityError(f"inode {inode} out of range")
        block = sb["inode_table_start"] + inode // INODES_PER_BLOCK
        offset = (inode % INODES_PER_BLOCK) * INODE_SIZE
        return block, offset

    def _write_inode(
        self, inode: int, mode: int, size: int, extents: List[Extent]
    ) -> None:
        if len(extents) > MAX_EXTENTS:
            raise CapacityError("too many extents for one inode")
        block, offset = self._inode_location(inode)
        raw = bytearray(self.namespace.read_blocks(block, 1))
        body = bytearray(INODE_SIZE)
        _INODE_HEAD.pack_into(body, 0, mode, size, len(extents))
        at = _INODE_HEAD.size
        for extent in extents:
            _EXTENT.pack_into(body, at, extent.logical, extent.physical, extent.length)
            at += _EXTENT.size
        raw[offset : offset + INODE_SIZE] = body
        self.namespace.write_blocks(block, bytes(raw))

    def read_inode(self, inode: int) -> Tuple[int, int, ExtentTree]:
        """Returns (mode, size, extent tree)."""
        block, offset = self._inode_location(inode)
        raw = self.namespace.read_blocks(block, 1)[offset : offset + INODE_SIZE]
        mode, size, extent_count = _INODE_HEAD.unpack_from(raw, 0)
        tree = ExtentTree()
        at = _INODE_HEAD.size
        for _ in range(extent_count):
            logical, physical, length = _EXTENT.unpack_from(raw, at)
            at += _EXTENT.size
            tree.insert(Extent(logical, physical, length))
        return mode, size, tree

    def _next_free_inode(self) -> int:
        sb = self.superblock()
        total = sb["inode_table_blocks"] * INODES_PER_BLOCK
        for inode in range(1, total):
            mode, __, ___ = self.read_inode(inode)
            if mode == 0:
                return inode
        raise CapacityError("no free inodes")

    # -- directories ---------------------------------------------------------
    def _read_dir(self, inode: int) -> Dict[str, int]:
        mode, size, tree = self.read_inode(inode)
        if mode != MODE_DIR:
            raise ProtocolError(f"inode {inode} is not a directory")
        data = self._read_extents(tree, size)
        entries: Dict[str, int] = {}
        if not data:
            return entries
        (count,) = struct.unpack_from("<I", data, 0)
        at = 4
        for _ in range(count):
            (name_len,) = struct.unpack_from("<H", data, at)
            at += 2
            name = data[at : at + name_len].decode()
            at += name_len
            (child,) = struct.unpack_from("<I", data, at)
            at += 4
            entries[name] = child
        return entries

    def _write_dir(self, inode: int, entries: Dict[str, int]) -> None:
        parts = [struct.pack("<I", len(entries))]
        for name, child in entries.items():
            encoded = name.encode()
            parts.append(struct.pack("<H", len(encoded)))
            parts.append(encoded)
            parts.append(struct.pack("<I", child))
        data = b"".join(parts)
        extents = self._store_data(data)
        self._write_inode(inode, MODE_DIR, len(data), extents)

    # -- data ------------------------------------------------------------------
    def _store_data(self, data: bytes) -> List[Extent]:
        if not data:
            return []
        blocks = max(1, -(-len(data) // LBA_SIZE))
        physical = self._alloc_blocks(blocks)
        self.namespace.write_blocks(physical, data)
        return [Extent(logical=0, physical=physical, length=blocks)]

    def _read_extents(self, tree: ExtentTree, size: int) -> bytes:
        if size == 0:
            return b""
        blocks = max(1, -(-size // LBA_SIZE))
        parts = []
        for physical, run in tree.translate_range(0, blocks):
            parts.append(self.namespace.read_blocks(physical, run))
        return b"".join(parts)[:size]

    # -- public API --------------------------------------------------------
    def _resolve_dir(self, components: List[str]) -> int:
        inode = ROOT_INODE
        for component in components:
            entries = self._read_dir(inode)
            if component not in entries:
                raise FileNotFoundError("/".join(components))
            inode = entries[component]
        return inode

    def mkdir(self, path: str) -> int:
        *parents, name = [p for p in path.split("/") if p]
        parent = self._resolve_dir(parents)
        entries = self._read_dir(parent)
        if name in entries:
            raise ConfigurationError(f"{path} already exists")
        inode = self._next_free_inode()
        self._write_inode(inode, MODE_DIR, 0, [])
        entries[name] = inode
        self._write_dir(parent, entries)
        return inode

    def create_file(self, path: str, data: bytes) -> int:
        *parents, name = [p for p in path.split("/") if p]
        parent = self._resolve_dir(parents)
        entries = self._read_dir(parent)
        if name in entries:
            raise ConfigurationError(f"{path} already exists")
        inode = self._next_free_inode()
        extents = self._store_data(data)
        self._write_inode(inode, MODE_FILE, len(data), extents)
        entries[name] = inode
        self._write_dir(parent, entries)
        return inode

    def write_file(self, path: str, data: bytes) -> int:
        """Replace an existing file's contents (new extents, same inode).

        Old blocks are not reclaimed — HyperExt uses a bump allocator and
        leaves garbage collection to reformat, like early log-structured
        designs.
        """
        inode = self.lookup(path)
        mode, __, ___ = self.read_inode(inode)
        if mode != MODE_FILE:
            raise ProtocolError(f"{path} is not a file")
        extents = self._store_data(data)
        self._write_inode(inode, MODE_FILE, len(data), extents)
        return inode

    def unlink(self, path: str) -> None:
        """Remove a file: drop the directory entry and free the inode."""
        *parents, name = [p for p in path.split("/") if p]
        parent = self._resolve_dir(parents)
        entries = self._read_dir(parent)
        if name not in entries:
            raise FileNotFoundError(path)
        inode = entries[name]
        mode, __, ___ = self.read_inode(inode)
        if mode == MODE_DIR and self._read_dir(inode):
            raise ProtocolError(f"directory {path} not empty")
        del entries[name]
        self._write_dir(parent, entries)
        self._write_inode(inode, 0, 0, [])  # mark the inode free

    def lookup(self, path: str) -> int:
        components = [p for p in path.split("/") if p]
        if not components:
            return ROOT_INODE
        parent = self._resolve_dir(components[:-1])
        entries = self._read_dir(parent)
        if components[-1] not in entries:
            raise FileNotFoundError(path)
        return entries[components[-1]]

    def read_file(self, path: str) -> bytes:
        inode = self.lookup(path)
        mode, size, tree = self.read_inode(inode)
        if mode != MODE_FILE:
            raise ProtocolError(f"{path} is not a file")
        return self._read_extents(tree, size)

    def listdir(self, path: str) -> List[str]:
        inode = self.lookup(path)
        return sorted(self._read_dir(inode))

    def file_extents(self, path: str) -> List[Extent]:
        """The physical extents of a file — what the DPU datapath needs."""
        __, ___, tree = self.read_inode(self.lookup(path))
        return list(tree)
