"""File systems and layout annotations (paper §2.3).

Two on-disk layouts — an ext4-like extent-based file system and an
F2FS-like log-structured one — plus a Spiffy-style annotation DSL. The
annotations describe the layouts declaratively; from them the package
*generates* a layout walker that resolves directories and files to data
blocks with no file-system code in the loop, which is exactly how the DPU
reads "Arrow/Parquet format, on the F2FS/ext4 file system on NVMe storage
without any host-side, or client-side CPU involvement".
"""

from repro.fs.ext4 import HyperExtFs
from repro.fs.f2fs import LogStructuredFs
from repro.fs.spiffy import (
    Field,
    LayoutAnnotation,
    LayoutWalker,
    LogFsWalker,
    StructDef,
    ext4_annotation,
    f2fs_annotation,
    generate_walker_code,
)

__all__ = [
    "HyperExtFs",
    "LogStructuredFs",
    "Field",
    "StructDef",
    "LayoutAnnotation",
    "LayoutWalker",
    "LogFsWalker",
    "ext4_annotation",
    "f2fs_annotation",
    "generate_walker_code",
]
