"""A log-structured file system in the F2FS mold.

Everything is an append to the log: file writes append data records, and a
node-address table (NAT) in the checkpoint maps inode numbers to their
latest record. Crash recovery = read the last checkpoint, then roll the log
forward. Flash-native: no overwrites except the checkpoint block pair.

Layout (4 KiB blocks)::

    block 0    checkpoint A   (generation, log head, serialized NAT)
    block 1    checkpoint B   (the valid checkpoint is the newer generation)
    block 2..  the log: (inode u32, name_len u16, name, size u32, data)
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.common.errors import CapacityError, ProtocolError
from repro.hw.nvme.namespace import LBA_SIZE, Namespace

_CHECKPOINT_MAGIC = 0xF2F5
LOG_START = 2

_CP_HEAD = struct.Struct("<IIII")  # magic, generation, log_head, nat_count
_NAT_ENTRY = struct.Struct("<II")  # inode, block
_RECORD_HEAD = struct.Struct("<IHI")  # inode, name_len, size


class LogStructuredFs:
    """Append-only files keyed by path, with checkpointed NAT recovery."""

    def __init__(self, namespace: Namespace):
        self.namespace = namespace
        self._nat: Dict[int, int] = {}  # inode -> log block of latest record
        self._names: Dict[str, int] = {}  # path -> inode
        self._log_head = LOG_START
        self._generation = 0
        self._next_inode = 1

    @classmethod
    def mkfs(cls, namespace: Namespace) -> "LogStructuredFs":
        fs = cls(namespace)
        fs.checkpoint()
        return fs

    # -- log records -------------------------------------------------------
    def _append_record(self, inode: int, name: str, data: bytes) -> int:
        encoded = name.encode()
        record = _RECORD_HEAD.pack(inode, len(encoded), len(data)) + encoded + data
        blocks = max(1, -(-len(record) // LBA_SIZE))
        if self._log_head + blocks > self.namespace.capacity_blocks:
            raise CapacityError("log full")
        block = self._log_head
        self.namespace.write_blocks(block, record)
        self._log_head += blocks
        self._nat[inode] = block
        return block

    def _read_record(self, block: int) -> Tuple[int, str, bytes]:
        head_raw = self.namespace.read_blocks(block, 1)
        inode, name_len, size = _RECORD_HEAD.unpack_from(head_raw, 0)
        total = _RECORD_HEAD.size + name_len + size
        blocks = max(1, -(-total // LBA_SIZE))
        raw = self.namespace.read_blocks(block, blocks)
        name = raw[_RECORD_HEAD.size : _RECORD_HEAD.size + name_len].decode()
        data = raw[_RECORD_HEAD.size + name_len : total]
        return inode, name, data

    # -- public API --------------------------------------------------------
    def write_file(self, path: str, data: bytes) -> int:
        """Create or replace a file; returns its inode."""
        inode = self._names.get(path)
        if inode is None:
            inode = self._next_inode
            self._next_inode += 1
            self._names[path] = inode
        self._append_record(inode, path, data)
        return inode

    def read_file(self, path: str) -> bytes:
        inode = self._names.get(path)
        if inode is None:
            raise FileNotFoundError(path)
        block = self._nat.get(inode)
        if block is None:
            raise ProtocolError(f"NAT missing inode {inode}")
        __, ___, data = self._read_record(block)
        return data

    def listdir(self) -> List[str]:
        return sorted(self._names)

    def nat_entry(self, path: str) -> Tuple[int, int]:
        """(inode, log block) — the indirection the annotation walker chases."""
        inode = self._names[path]
        return inode, self._nat[inode]

    # -- checkpointing and recovery ---------------------------------------
    def checkpoint(self) -> None:
        """Persist the NAT + name table into the older checkpoint slot."""
        self._generation += 1
        names_blob = "\x00".join(
            f"{path}\x01{inode}" for path, inode in self._names.items()
        ).encode()
        body = _CP_HEAD.pack(
            _CHECKPOINT_MAGIC, self._generation, self._log_head, len(self._nat)
        )
        body += b"".join(
            _NAT_ENTRY.pack(inode, block) for inode, block in self._nat.items()
        )
        body += struct.pack("<I", len(names_blob)) + names_blob
        if len(body) > LBA_SIZE:
            raise CapacityError("checkpoint exceeds one block")
        slot = self._generation % 2  # alternate A/B
        self.namespace.write_blocks(slot, body)

    @classmethod
    def recover(cls, namespace: Namespace) -> "LogStructuredFs":
        """Mount after a crash: newest valid checkpoint + log roll-forward."""
        best: Optional[Tuple[int, int, bytes]] = None
        for slot in (0, 1):
            raw = namespace.read_blocks(slot, 1)
            magic, generation, log_head, nat_count = _CP_HEAD.unpack_from(raw, 0)
            if magic == _CHECKPOINT_MAGIC:
                if best is None or generation > best[0]:
                    best = (generation, log_head, raw)
        if best is None:
            raise ProtocolError("no valid checkpoint found")
        generation, checkpointed_head, raw = best
        fs = cls(namespace)
        fs._generation = generation
        __, ___, ____, nat_count = _CP_HEAD.unpack_from(raw, 0)
        at = _CP_HEAD.size
        for _ in range(nat_count):
            inode, block = _NAT_ENTRY.unpack_from(raw, at)
            at += _NAT_ENTRY.size
            fs._nat[inode] = block
        (names_len,) = struct.unpack_from("<I", raw, at)
        at += 4
        names_blob = raw[at : at + names_len].decode()
        if names_blob:
            for item in names_blob.split("\x00"):
                path, inode = item.split("\x01")
                fs._names[path] = int(inode)
        fs._next_inode = max(fs._nat, default=0) + 1
        fs._log_head = checkpointed_head
        # Roll forward: records appended after the checkpoint.
        fs._roll_forward()
        return fs

    def _roll_forward(self) -> None:
        block = self._log_head
        while block < self.namespace.capacity_blocks:
            head = self.namespace.read_blocks(block, 1)
            inode, name_len, size = _RECORD_HEAD.unpack_from(head, 0)
            if inode == 0 or name_len == 0 or name_len > 1024:
                break  # end of log
            try:
                __, name, ___ = self._read_record(block)
            except Exception:
                break
            self._nat[inode] = block
            self._names[name] = inode
            self._next_inode = max(self._next_inode, inode + 1)
            total = _RECORD_HEAD.size + name_len + size
            block += max(1, -(-total // LBA_SIZE))
        self._log_head = block
