"""Spiffy-style file-system layout annotations and generated walkers.

Paper §2.3: "prior research from Sun et al. show that such a file-system
layout annotation can be generated efficiently for ext4 and F2FS file
systems. The availability of annotation enables us to generate file system
layout and metadata access codes ... thus accessing directories and files
directly."

The DSL has two layers:

* **structure annotations** — named structs of typed fields (with
  counted arrays and variable-length fields), parsed generically by
  :class:`LayoutWalker` given nothing but a ``read_block`` callable;
* **semantic bindings** — which struct is the superblock, how inode
  numbers map to table locations, which fields carry sizes/pointers.

``LayoutWalker.resolve_file`` chases a path to its physical extents using
only the annotation — no import of the file-system module — and
``generate_walker_code`` emits the C-like accessor source that the
Hyperion compiler would lower to HDL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError, ProtocolError

_SCALARS = {"u8": 1, "u16": 2, "u32": 4, "u64": 8}


@dataclass(frozen=True)
class Field:
    """One annotated field.

    ``kind`` is a scalar ("u8".."u64"), ``bytes``, or ``struct:<name>``.
    ``count`` / ``count_field`` repeat the field; ``length_field`` sizes a
    ``bytes`` field from a previously parsed field.
    """

    name: str
    kind: str
    count: int = 1
    count_field: Optional[str] = None
    length_field: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _SCALARS and self.kind != "bytes" and not self.kind.startswith("struct:"):
            raise ConfigurationError(f"unknown field kind {self.kind!r}")


@dataclass
class StructDef:
    """A named, ordered list of annotated fields."""

    name: str
    fields: List[Field]

    def fixed_size(self, layout: "LayoutAnnotation") -> int:
        """Size when no variable-length fields are present."""
        total = 0
        for f in self.fields:
            if f.count_field or f.length_field:
                raise ConfigurationError(f"{self.name}.{f.name} is variable")
            if f.kind in _SCALARS:
                total += _SCALARS[f.kind] * f.count
            elif f.kind.startswith("struct:"):
                inner = layout.structs[f.kind.split(":", 1)[1]]
                total += inner.fixed_size(layout) * f.count
            else:
                raise ConfigurationError("bare bytes field needs a length")
        return total


class LayoutAnnotation:
    """A named bundle of struct definitions plus semantic bindings."""

    def __init__(self, name: str, block_size: int = 4096):
        self.name = name
        self.block_size = block_size
        self.structs: Dict[str, StructDef] = {}
        self.bindings: Dict[str, Any] = {}

    def structure(self, name: str, fields: List[Field]) -> StructDef:
        if name in self.structs:
            raise ConfigurationError(f"duplicate struct {name}")
        struct_def = StructDef(name, fields)
        self.structs[name] = struct_def
        return struct_def

    def bind(self, key: str, value: Any) -> None:
        self.bindings[key] = value


class LayoutWalker:
    """Generic parser + path resolver compiled from an annotation."""

    def __init__(self, layout: LayoutAnnotation, read_block: Callable[[int, int], bytes]):
        self.layout = layout
        self.read_block = read_block
        self.blocks_read = 0
        self._superblock_cache: Optional[Dict[str, Any]] = None

    def _read(self, block: int, count: int = 1) -> bytes:
        self.blocks_read += count
        return self.read_block(block, count)

    # -- generic struct parsing ------------------------------------------------
    def parse_struct(self, name: str, raw: bytes, offset: int = 0) -> Tuple[Dict, int]:
        """Parse one struct instance; returns (fields dict, bytes consumed)."""
        struct_def = self.layout.structs.get(name)
        if struct_def is None:
            raise ConfigurationError(f"unknown struct {name}")
        out: Dict[str, Any] = {}
        at = offset
        for f in struct_def.fields:
            repeat = f.count
            if f.count_field is not None:
                repeat = out[f.count_field]
            values = []
            for _ in range(repeat):
                if f.kind in _SCALARS:
                    width = _SCALARS[f.kind]
                    values.append(int.from_bytes(raw[at : at + width], "little"))
                    at += width
                elif f.kind == "bytes":
                    length = out[f.length_field] if f.length_field else f.count
                    values.append(bytes(raw[at : at + length]))
                    at += length
                    break  # a bytes field is one value
                else:
                    inner_name = f.kind.split(":", 1)[1]
                    inner, consumed = self.parse_struct(inner_name, raw, at)
                    values.append(inner)
                    at += consumed
            out[f.name] = values[0] if (f.count == 1 and f.count_field is None) else values
        return out, at - offset

    # -- semantic resolution ---------------------------------------------------
    def superblock(self) -> Dict[str, Any]:
        if self._superblock_cache is not None:
            return self._superblock_cache
        block = self.layout.bindings.get("superblock_block", 0)
        raw = self._read(block, 1)
        parsed, __ = self.parse_struct(self.layout.bindings["superblock_struct"], raw)
        magic_field = self.layout.bindings.get("magic_field")
        if magic_field is not None:
            expected = self.layout.bindings["magic_value"]
            if parsed[magic_field] != expected:
                raise ProtocolError("superblock magic mismatch")
        self._superblock_cache = parsed
        return parsed

    def read_inode(self, inode: int) -> Dict[str, Any]:
        sb = self.superblock()
        inode_size = self.layout.structs[
            self.layout.bindings["inode_struct"]
        ].fixed_size(self.layout)
        per_block = self.layout.block_size // inode_size
        table_start = sb[self.layout.bindings["inode_table_start_field"]]
        block = table_start + inode // per_block
        offset = (inode % per_block) * inode_size
        raw = self._read(block, 1)
        parsed, __ = self.parse_struct(
            self.layout.bindings["inode_struct"], raw, offset
        )
        return parsed

    def _file_data(self, inode_fields: Dict[str, Any]) -> bytes:
        size = inode_fields[self.layout.bindings["size_field"]]
        if size == 0:
            return b""
        extents = inode_fields[self.layout.bindings["extents_field"]]
        count = inode_fields[self.layout.bindings["extent_count_field"]]
        parts = []
        for extent in extents[:count]:
            physical = extent[self.layout.bindings["extent_physical_field"]]
            length = extent[self.layout.bindings["extent_length_field"]]
            parts.append(self._read(physical, length))
        return b"".join(parts)[:size]

    def _parse_dir(self, data: bytes) -> Dict[str, int]:
        if not data:
            return {}
        header, consumed = self.parse_struct(
            self.layout.bindings["dir_header_struct"], data
        )
        entries: Dict[str, int] = {}
        at = consumed
        for _ in range(header[self.layout.bindings["dir_count_field"]]):
            entry, consumed = self.parse_struct(
                self.layout.bindings["dir_entry_struct"], data, at
            )
            at += consumed
            name = entry[self.layout.bindings["dir_name_field"]].decode()
            entries[name] = entry[self.layout.bindings["dir_inode_field"]]
        return entries

    def resolve_file(self, path: str) -> Tuple[int, List[Tuple[int, int]]]:
        """Chase a path to ``(size, [(physical_block, run_length), ...])``
        using only the annotations."""
        inode_number = self.layout.bindings.get("root_inode", 0)
        inode = self.read_inode(inode_number)
        components = [p for p in path.split("/") if p]
        for component in components:
            entries = self._parse_dir(self._file_data(inode))
            if component not in entries:
                raise FileNotFoundError(path)
            inode_number = entries[component]
            inode = self.read_inode(inode_number)
        size = inode[self.layout.bindings["size_field"]]
        count = inode[self.layout.bindings["extent_count_field"]]
        extents = inode[self.layout.bindings["extents_field"]][:count]
        physical = [
            (
                e[self.layout.bindings["extent_physical_field"]],
                e[self.layout.bindings["extent_length_field"]],
            )
            for e in extents
        ]
        return size, physical

    def read_file(self, path: str) -> bytes:
        size, pieces = self.resolve_file(path)
        parts = [self._read(block, run) for block, run in pieces]
        return b"".join(parts)[:size]


def ext4_annotation() -> LayoutAnnotation:
    """The generated annotation for the HyperExt (ext4-like) layout.

    This mirrors what Spiffy derives from ext4 headers; note it is written
    against the *on-disk format*, independently of :mod:`repro.fs.ext4`.
    """
    layout = LayoutAnnotation("hyperext")
    layout.structure(
        "superblock",
        [
            Field("magic", "u32"),
            Field("blocks", "u32"),
            Field("inode_table_start", "u32"),
            Field("inode_table_blocks", "u32"),
            Field("data_start", "u32"),
        ],
    )
    layout.structure(
        "extent",
        [Field("logical", "u32"), Field("physical", "u32"), Field("length", "u32")],
    )
    layout.structure(
        "inode",
        [
            Field("mode", "u32"),
            Field("size", "u64"),
            Field("extent_count", "u32"),
            Field("extents", "struct:extent", count=4),
        ],
    )
    layout.structure("dir_header", [Field("count", "u32")])
    layout.structure(
        "dir_entry",
        [
            Field("name_len", "u16"),
            Field("name", "bytes", length_field="name_len"),
            Field("inode", "u32"),
        ],
    )
    layout.bind("superblock_block", 0)
    layout.bind("superblock_struct", "superblock")
    layout.bind("magic_field", "magic")
    layout.bind("magic_value", 0x48595045)
    layout.bind("inode_struct", "inode")
    layout.bind("inode_table_start_field", "inode_table_start")
    layout.bind("size_field", "size")
    layout.bind("extent_count_field", "extent_count")
    layout.bind("extents_field", "extents")
    layout.bind("extent_physical_field", "physical")
    layout.bind("extent_length_field", "length")
    layout.bind("dir_header_struct", "dir_header")
    layout.bind("dir_count_field", "count")
    layout.bind("dir_entry_struct", "dir_entry")
    layout.bind("dir_name_field", "name")
    layout.bind("dir_inode_field", "inode")
    layout.bind("root_inode", 0)
    return layout


def f2fs_annotation() -> LayoutAnnotation:
    """The generated annotation for the log-structured (F2FS-like) layout.

    Resolution is indirection-based rather than extent-based: the newest
    checkpoint carries a node-address table mapping inodes to their latest
    log record; names live in a blob inside the checkpoint.
    """
    layout = LayoutAnnotation("hyperf2fs")
    layout.structure(
        "checkpoint",
        [
            Field("magic", "u32"),
            Field("generation", "u32"),
            Field("log_head", "u32"),
            Field("nat_count", "u32"),
            Field("nat", "struct:nat_entry", count_field="nat_count"),
            Field("names_len", "u32"),
            Field("names", "bytes", length_field="names_len"),
        ],
    )
    layout.structure(
        "nat_entry", [Field("inode", "u32"), Field("block", "u32")]
    )
    layout.structure(
        "record",
        [
            Field("inode", "u32"),
            Field("name_len", "u16"),
            Field("size", "u32"),
        ],
    )
    layout.bind("checkpoint_blocks", (0, 1))
    layout.bind("magic_value", 0xF2F5)
    return layout


class LogFsWalker:
    """Resolves files on the F2FS-like layout using only its annotation.

    The chase: read both checkpoint slots, pick the newer valid one, parse
    the NAT + name blob, then read the named inode's latest log record.
    """

    def __init__(self, layout: LayoutAnnotation, read_block: Callable[[int, int], bytes]):
        self.layout = layout
        self.walker = LayoutWalker(layout, read_block)

    @property
    def blocks_read(self) -> int:
        return self.walker.blocks_read

    def _best_checkpoint(self) -> Dict[str, Any]:
        best: Optional[Dict[str, Any]] = None
        for slot in self.layout.bindings["checkpoint_blocks"]:
            raw = self.walker._read(slot, 1)
            parsed, __ = self.walker.parse_struct("checkpoint", raw)
            if parsed["magic"] != self.layout.bindings["magic_value"]:
                continue
            if best is None or parsed["generation"] > best["generation"]:
                best = parsed
        if best is None:
            raise ProtocolError("no valid checkpoint found")
        return best

    def _name_table(self, checkpoint: Dict[str, Any]) -> Dict[str, int]:
        blob = checkpoint["names"].decode()
        table: Dict[str, int] = {}
        if blob:
            for item in blob.split("\x00"):
                path, inode = item.split("\x01")
                table[path] = int(inode)
        return table

    def read_file(self, path: str) -> bytes:
        checkpoint = self._best_checkpoint()
        names = self._name_table(checkpoint)
        if path not in names:
            raise FileNotFoundError(path)
        inode = names[path]
        nat = {entry["inode"]: entry["block"] for entry in checkpoint["nat"]}
        if inode not in nat:
            raise ProtocolError(f"NAT missing inode {inode}")
        block = nat[inode]
        head_raw = self.walker._read(block, 1)
        record, consumed = self.walker.parse_struct("record", head_raw)
        total = consumed + record["name_len"] + record["size"]
        blocks = max(1, -(-total // self.layout.block_size))
        raw = self.walker._read(block, blocks) if blocks > 1 else head_raw
        start = consumed + record["name_len"]
        return raw[start : start + record["size"]]

    def listdir(self) -> List[str]:
        return sorted(self._name_table(self._best_checkpoint()))


def generate_walker_code(layout: LayoutAnnotation) -> str:
    """Emit C-like accessor code from the annotation (paper §2.3: "generate
    file system layout and metadata access codes (in C/C++)"). This text is
    what the eBPF/HDL toolchain would consume next."""
    lines = [f"/* generated accessors for layout '{layout.name}' */"]
    for struct_def in layout.structs.values():
        lines.append(f"struct {struct_def.name} {{")
        for f in struct_def.fields:
            if f.kind in _SCALARS:
                c_type = {"u8": "uint8_t", "u16": "uint16_t",
                          "u32": "uint32_t", "u64": "uint64_t"}[f.kind]
                suffix = f"[{f.count}]" if f.count > 1 else ""
                lines.append(f"    {c_type} {f.name}{suffix};")
            elif f.kind == "bytes":
                length = f.length_field or f.count
                lines.append(f"    uint8_t {f.name}[{length}];")
            else:
                inner = f.kind.split(":", 1)[1]
                suffix = f"[{f.count}]" if f.count > 1 else ""
                lines.append(f"    struct {inner} {f.name}{suffix};")
        lines.append("};")
        lines.append("")
    lines.append("uint64_t resolve_file(const char *path, extent_t *out) {")
    lines.append(f"    struct {layout.bindings['superblock_struct']} sb;")
    lines.append(f"    read_block({layout.bindings.get('superblock_block', 0)}, &sb);")
    lines.append("    /* walk directories per dir_entry annotation */")
    lines.append("    /* chase extents per inode annotation */")
    lines.append("    return inode.size;")
    lines.append("}")
    return "\n".join(lines)
