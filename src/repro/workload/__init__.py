"""The traffic plane: workload generators and SLO-driven autoscaling.

This package turns the sharded data plane into something that serves
*traffic* rather than test loops:

* :mod:`repro.workload.spec` — declarative scenarios: tenants ×
  operation mixes × arrival curves (steady/diurnal/burst/step) with
  Zipfian key popularity (:mod:`repro.workload.popularity`);
* :mod:`repro.workload.generator` — open-loop (arrival-curve-driven,
  simulated millions of independent users) and closed-loop (bounded
  worker population) generators driving
  :class:`~repro.sharding.ShardedKvCluster` through per-tenant
  :class:`~repro.sharding.ShardedKvClient` handles;
* :mod:`repro.workload.autoscaler` — the control loop: SLO firings
  from :class:`~repro.telemetry.slo.SloMonitor` drive
  :class:`~repro.sharding.ShardMigrator` add/remove-DPU with
  dwell/cooldown hysteresis.

``python -m repro.workload`` previews a spec's deterministic arrival
stream; ``docs/WORKLOADS.md`` is the operator's handbook; experiment
E20 (``python -m repro.eval e20``) compares static vs. SLO-driven
capacity under a compressed daily curve.
"""

from repro.workload.autoscaler import Autoscaler, AutoscalerPolicy
from repro.workload.generator import (
    ClosedLoopTraffic,
    OpenLoopTraffic,
    arrival_preview,
)
from repro.workload.popularity import ZipfKeys
from repro.workload.spec import (
    BurstCurve,
    DiurnalCurve,
    OpMix,
    StepCurve,
    SteadyCurve,
    TenantSpec,
    WorkloadSpec,
)

__all__ = [
    "Autoscaler",
    "AutoscalerPolicy",
    "BurstCurve",
    "ClosedLoopTraffic",
    "DiurnalCurve",
    "OpMix",
    "OpenLoopTraffic",
    "StepCurve",
    "SteadyCurve",
    "TenantSpec",
    "WorkloadSpec",
    "ZipfKeys",
    "arrival_preview",
]
