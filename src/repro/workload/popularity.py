"""Zipfian key popularity with tunable skew.

Real key-value traffic is never uniform: a handful of keys absorb most
of the load (session tokens, home-page fragments, celebrity profiles).
:class:`ZipfKeys` models that with the classic Zipf-Mandelbrot weight
``w_i = 1 / (i + 1)^skew`` over a fixed key universe, so the traffic
generators can reproduce the hot-key concentration that makes caching,
migration, and autoscaling interesting.

Draws go through ``random.Random`` instances owned by the caller, so
the stream is a pure function of the seed — same seed, byte-identical
key sequence, independent of ``PYTHONHASHSEED``.

>>> from random import Random
>>> keys = ZipfKeys(128, skew=1.0)
>>> keys.key(0)
b'key-00000'
>>> rng = Random("doc/zipf")
>>> [keys.pick_index(rng) for _ in range(6)]
[3, 16, 4, 38, 0, 2]
>>> 0.4 < keys.hot_mass(8) < 0.6   # top 8 of 128 keys draw ~half the load
True
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List

from repro.common.errors import ConfigurationError

__all__ = ["ZipfKeys"]


class ZipfKeys:
    """A fixed key universe with Zipf(``skew``) popularity weights.

    ``skew=0`` degenerates to uniform; ``skew~1`` matches the classic
    web-object distribution; higher values concentrate the mass onto
    ever fewer keys.  Weights are precomputed into a cumulative table,
    so :meth:`pick_index` is one ``rng.random()`` plus a bisect.
    """

    def __init__(self, count: int, skew: float = 1.0,
                 prefix: str = "key-") -> None:
        if count < 1:
            raise ConfigurationError("zipf key count must be >= 1")
        if skew < 0:
            raise ConfigurationError("zipf skew must be >= 0")
        self.count = count
        self.skew = skew
        self.prefix = prefix
        self._keys = [f"{prefix}{i:05d}".encode() for i in range(count)]
        cumulative: List[float] = []
        total = 0.0
        for rank in range(count):
            total += 1.0 / float(rank + 1) ** skew
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def key(self, index: int) -> bytes:
        """The key at popularity rank *index* (0 = hottest)."""
        return self._keys[index]

    def keys(self) -> List[bytes]:
        """All keys in rank order (a copy; safe to mutate)."""
        return list(self._keys)

    def pick_index(self, rng) -> int:
        """Draw one popularity rank from *rng* (caller owns the stream)."""
        return bisect_left(self._cumulative, rng.random() * self._total)

    def pick(self, rng) -> bytes:
        """Draw one key from *rng* according to the Zipf weights."""
        return self._keys[self.pick_index(rng)]

    def span(self, start: int, length: int) -> List[bytes]:
        """*length* consecutive keys starting at rank *start*, wrapping."""
        return [self._keys[(start + i) % self.count] for i in range(length)]

    def hot_mass(self, top: int) -> float:
        """Fraction of total popularity carried by the *top* hottest keys."""
        if top <= 0:
            return 0.0
        if top >= self.count:
            return 1.0
        return self._cumulative[top - 1] / self._total

    def describe(self) -> str:
        """One canonical line, used in workload-spec echoes and reports."""
        return (
            f"zipf keys={self.count} skew={self.skew!r} "
            f"hot8={self.hot_mass(8):.3f}"
        )
