"""Preview a workload spec's deterministic arrival stream.

Usage::

    python -m repro.workload [--seed N] [--limit N] [--spec FILE]

Without ``--spec`` a small built-in demo scenario is used.  The output
is the spec echo followed by the first ``--limit`` arrivals exactly as
:class:`~repro.workload.generator.OpenLoopTraffic` would replay them —
same seed, byte-identical lines, independent of ``PYTHONHASHSEED``
(CI diffs this output across hash seeds).
"""

from __future__ import annotations

import argparse
import sys

from repro.workload.generator import arrival_preview
from repro.workload.spec import WorkloadSpec

DEMO_SPEC = """\
# Demo scenario: a get-heavy web tenant over a compressed day, plus a
# steady scan/analytics batch tenant. See docs/WORKLOADS.md.
keys 128
zipf 1.0
tenant web   mix get=0.78,put=0.22 curve diurnal trough=4000 peak=28000 period=240ms
tenant batch mix scan=0.7,analytics=0.3 curve steady rate=800
"""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload",
        description="preview a workload spec's deterministic arrivals",
    )
    parser.add_argument("--seed", type=int, default=20,
                        help="stream seed (default 20)")
    parser.add_argument("--limit", type=int, default=24,
                        help="arrivals to print (default 24)")
    parser.add_argument("--spec", default=None,
                        help="spec file (default: built-in demo)")
    args = parser.parse_args(argv)
    if args.spec is None:
        text = DEMO_SPEC
    else:
        with open(args.spec, "r", encoding="utf-8") as handle:
            text = handle.read()
    spec = WorkloadSpec.parse(text)
    print(spec.describe())
    print(f"# first {args.limit} arrivals, seed {args.seed}")
    for line in arrival_preview(spec, args.seed, limit=args.limit):
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
