"""Open- and closed-loop traffic generators over the sharded data plane.

Both generators drive a :class:`~repro.sharding.ShardedKvCluster`
through per-tenant :class:`~repro.sharding.ShardedKvClient` handles,
translating a :class:`~repro.workload.spec.WorkloadSpec` into simulated
operations:

* ``get``/``put`` — single-key ops on Zipf-drawn keys,
* ``scan`` — ``get_many`` over ``scan_span`` consecutive keys starting
  at a Zipf-drawn rank (owner-grouped, batched on the wire),
* ``analytics`` — ``get_many`` over ``analytics_span`` independent
  Zipf draws, a wide scatter that touches most of the fleet.

:class:`OpenLoopTraffic` models *millions of independent users*: the
offered rate follows each tenant's arrival curve regardless of how the
cluster is coping, via Lewis thinning of a Poisson process at the
curve's peak rate.  Overload therefore shows up as queueing, shed ops,
and latency — never as a politely backing-off client.
:class:`ClosedLoopTraffic` models a bounded worker population with
think time, the classic benchmark-harness shape.

Every random draw comes from ``random.Random(f"{seed}/...")`` streams
owned per tenant, so a given seed produces a byte-identical operation
stream regardless of ``PYTHONHASHSEED`` or cluster behaviour; the sim
interleaving cannot perturb the draws because no two tenants share an
RNG.  :func:`arrival_preview` exposes the identical arrival/key stream
as text without building a cluster — the workload CLI and the
determinism tests both lean on it.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.transport import RpcError
from repro.workload.popularity import ZipfKeys
from repro.workload.spec import TenantSpec, WorkloadSpec

__all__ = ["OpenLoopTraffic", "ClosedLoopTraffic", "arrival_preview"]

#: How often the offered/goodput gauges are refreshed (simulated s).
RATE_PERIOD = 0.002


def _draw_op(zipf: ZipfKeys, tenant: TenantSpec,
             oprng) -> Tuple[str, List[bytes]]:
    """One operation draw: the single source of per-arrival randomness.

    Shared by the generators and :func:`arrival_preview` so the
    previewed stream is exactly the stream the simulator replays.

    Reads, scans, and analytics follow the Zipf popularity — that skew
    is what makes caching and hot keys real.  Puts draw *uniformly*
    across the keyspace: writes land on individual user rows, and a
    Zipf-hot write key would pin its owner DPU's WAL at any fleet size,
    turning every capacity question into one unsplittable hot shard.
    """
    kind = tenant.mix.pick(oprng)
    if kind == "analytics":
        keys = [zipf.pick(oprng) for _ in range(tenant.analytics_span)]
    elif kind == "scan":
        keys = zipf.span(zipf.pick_index(oprng), tenant.scan_span)
    elif kind == "put":
        keys = [zipf.key(oprng.randrange(zipf.count))]
    else:
        keys = [zipf.pick(oprng)]
    return kind, keys


class _TrafficBase:
    """Shared machinery: op execution, accounting, rate gauges.

    Outcomes are recorded as ``(started, finished, ok, ops, tenant,
    kind)`` tuples in completion order — deterministic per seed, and
    cheap enough to keep for a whole experiment run.
    """

    def __init__(self, sim, spec: WorkloadSpec, clients: Dict[str, object],
                 seed: int, horizon: float, *,
                 deadline: Optional[float] = None,
                 scope: str = "workload.traffic") -> None:
        missing = [t.name for t in spec.tenants if t.name not in clients]
        if missing:
            raise ValueError(f"no client for tenants: {', '.join(missing)}")
        self.sim = sim
        self.spec = spec
        self.clients = clients
        self.seed = seed
        self.horizon = horizon
        self.deadline = deadline
        self.zipf = ZipfKeys(spec.key_count, spec.zipf_skew)
        self.outcomes: List[Tuple[float, float, bool, int, str, str]] = []
        self.origin = 0.0
        metrics = sim.telemetry.unique_scope(scope)
        self._offered = metrics.counter("offered_ops")
        self._served = metrics.counter("served_ops")
        self._failed = metrics.counter("failed_ops")
        self._latency = metrics.histogram("op_latency")
        self._offered_rate = metrics.gauge("offered_rate")
        self._goodput_rate = metrics.gauge("goodput_rate")
        self._inflight = metrics.gauge("inflight")
        self._good = 0

    # -- derived accounting --------------------------------------------------
    @property
    def offered(self) -> int:
        """Arrivals admitted to the generator so far."""
        return self._offered.value

    @property
    def served(self) -> int:
        """Requests that completed without an RPC error."""
        return self._served.value

    @property
    def failed(self) -> int:
        """Requests that raised (timeout, shed, queue-full, ...)."""
        return self._failed.value

    @property
    def good(self) -> int:
        """Served requests that also finished within the deadline."""
        return self._good

    def latencies(self) -> List[float]:
        """Per-request latency of every served request, completion order."""
        return [f - s for s, f, ok, _, _, _ in self.outcomes if ok]

    # -- op execution --------------------------------------------------------
    def _draw(self, tenant: TenantSpec, oprng) -> Tuple[str, List[bytes]]:
        """Draw one operation (kind + every key) from *oprng*.

        All randomness happens here, at arrival time, so the operation
        stream is a pure function of the seed: how long earlier ops
        take to execute cannot perturb later draws.
        :func:`arrival_preview` replays these draws verbatim.
        """
        return _draw_op(self.zipf, tenant, oprng)

    def _op(self, tenant: TenantSpec, kind: str, keys: List[bytes]):
        """Process: run one pre-drawn operation, account for its outcome."""
        client = self.clients[tenant.name]
        started = self.sim.now
        self._inflight.inc()
        ops = len(keys)
        ok = True
        try:
            if kind == "get":
                yield from client.get(keys[0])
            elif kind == "put":
                yield from client.put(keys[0], b"v" * tenant.value_size)
            else:  # scan / analytics
                yield from client.get_many(keys)
        except RpcError:
            ok = False
        finished = self.sim.now
        self._inflight.dec()
        if ok:
            self._served.inc()
            self._latency.observe(finished - started)
            if self.deadline is None or finished - started <= self.deadline:
                self._good += 1
        else:
            self._failed.inc()
        self.outcomes.append(
            (started, finished, ok, ops, tenant.name, kind)
        )

    def _rates_loop(self):
        """Process: refresh the offered/goodput rate gauges periodically."""
        prev_offered = 0
        prev_good = 0
        while self.sim.now < self.horizon:
            yield self.sim.timeout(RATE_PERIOD)
            offered, good = self._offered.value, self._good
            self._offered_rate.set((offered - prev_offered) / RATE_PERIOD)
            self._goodput_rate.set((good - prev_good) / RATE_PERIOD)
            prev_offered, prev_good = offered, good


class OpenLoopTraffic(_TrafficBase):
    """Arrival-curve-driven load that does not wait for the cluster.

    One Poisson arrival process per tenant, thinned from the curve's
    peak rate down to ``curve.rate(t)`` (Lewis & Shedler): arrivals are
    candidate events at the peak rate, each kept with probability
    ``rate(t) / peak``, which reproduces the exact time-varying rate
    while keeping the draw count — and therefore the stream —
    independent of the cluster's behaviour.
    """

    def start(self) -> None:
        """Spawn arrival processes; curve time 0 is the call instant."""
        self.origin = self.sim.now
        for tenant in self.spec.tenants:
            self.sim.process(self._arrivals(tenant))
        self.sim.process(self._rates_loop())

    def _arrivals(self, tenant: TenantSpec):
        rng = random.Random(f"{self.seed}/arrivals/{tenant.name}")
        oprng = random.Random(f"{self.seed}/ops/{tenant.name}")
        peak = tenant.curve.peak_rate
        while True:
            yield self.sim.timeout(rng.expovariate(peak))
            if self.sim.now >= self.horizon:
                return
            t = self.sim.now - self.origin
            if rng.random() * peak > tenant.curve.rate(t):
                continue  # thinned: below the instantaneous rate
            kind, keys = self._draw(tenant, oprng)
            self._offered.inc()
            self.sim.process(self._op(tenant, kind, keys))


class ClosedLoopTraffic(_TrafficBase):
    """A bounded worker population with think time.

    ``population`` workers are split across tenants proportionally to
    ``TenantSpec.weight`` (at least one each).  Each worker loops
    think → draw op → run to completion, so offered load self-limits
    under slowdown — the classic closed-loop harness, useful for
    capacity probing where :class:`OpenLoopTraffic` measures overload.
    """

    def __init__(self, sim, spec: WorkloadSpec, clients: Dict[str, object],
                 seed: int, horizon: float, *,
                 population: int = 64, think: float = 0.001,
                 deadline: Optional[float] = None,
                 scope: str = "workload.closed") -> None:
        super().__init__(sim, spec, clients, seed, horizon,
                         deadline=deadline, scope=scope)
        if population < len(spec.tenants):
            raise ValueError("population must cover every tenant")
        if think < 0:
            raise ValueError("think time must be >= 0")
        self.population = population
        self.think = think

    def workers_for(self, tenant: TenantSpec) -> int:
        """Worker count for *tenant*: weight-proportional, at least 1."""
        total = sum(t.weight for t in self.spec.tenants)
        return max(1, round(self.population * tenant.weight / total))

    def start(self) -> None:
        """Spawn the worker population; curve time 0 is the call instant."""
        self.origin = self.sim.now
        for tenant in self.spec.tenants:
            for worker in range(self.workers_for(tenant)):
                self.sim.process(self._worker(tenant, worker))
        self.sim.process(self._rates_loop())

    def _worker(self, tenant: TenantSpec, worker: int):
        rng = random.Random(f"{self.seed}/worker/{tenant.name}/{worker}")
        while True:
            yield self.sim.timeout(rng.expovariate(1.0 / self.think)
                                   if self.think else 0.0)
            if self.sim.now >= self.horizon:
                return
            kind, keys = self._draw(tenant, rng)
            self._offered.inc()
            yield from self._op(tenant, kind, keys)


def arrival_preview(spec: WorkloadSpec, seed: int,
                    limit: int = 32) -> Iterator[str]:
    """The open-loop arrival/key stream as canonical text lines.

    Replays exactly the thinning and op draws :class:`OpenLoopTraffic`
    would make for *seed* — same RNG stream names, same draw order per
    tenant — without a simulator or cluster, merging tenants by arrival
    time.  One line per accepted arrival::

        t=1.234ms tenant=web op=get key=key-00003

    Used by ``python -m repro.workload`` and by the determinism tests:
    the lines must be byte-identical across ``PYTHONHASHSEED`` values.
    """
    zipf = ZipfKeys(spec.key_count, spec.zipf_skew)

    def tenant_stream(tenant: TenantSpec) -> Iterator[Tuple[float, str]]:
        rng = random.Random(f"{seed}/arrivals/{tenant.name}")
        oprng = random.Random(f"{seed}/ops/{tenant.name}")
        peak = tenant.curve.peak_rate
        now = 0.0
        while True:
            now += rng.expovariate(peak)
            if rng.random() * peak > tenant.curve.rate(now):
                continue
            kind, keys = _draw_op(zipf, tenant, oprng)
            yield now, (
                f"t={now * 1e3:.3f}ms tenant={tenant.name} "
                f"op={kind} key={keys[0].decode()} n={len(keys)}"
            )

    streams = [tenant_stream(t) for t in spec.tenants]
    heads = []
    for index, stream in enumerate(streams):
        at, line = next(stream)
        heads.append((at, index, line))
    heapq.heapify(heads)
    for _ in range(limit):
        at, index, line = heapq.heappop(heads)
        yield line
        at, line = next(streams[index])
        heapq.heappush(heads, (at, index, line))
