"""Declarative workload specs: tenants × operation mixes × arrival curves.

A workload is described in a small line-oriented text format (one
tenant per line, ``#`` comments), so scenarios live in docs and tests
as readable strings rather than code:

>>> spec = WorkloadSpec.parse('''
... keys 128
... zipf 1.0
... tenant web    mix get=0.78,put=0.22 curve diurnal trough=4000 peak=28000 period=240ms
... tenant batch  mix scan=0.7,analytics=0.3 curve steady rate=800
... ''')
>>> [t.name for t in spec.tenants]
['web', 'batch']
>>> spec.tenants[0].curve.rate(0.0)
4000.0
>>> spec.tenants[0].curve.rate(0.120)  # midday == peak
28000.0
>>> round(spec.peak_rate())
28800

Rates are operations per simulated second; durations accept the same
``ns/us/ms/s`` suffixes as SLO rules.  See ``docs/WORKLOADS.md`` for
the full authoring guide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigurationError

__all__ = [
    "OpMix",
    "SteadyCurve",
    "DiurnalCurve",
    "BurstCurve",
    "StepCurve",
    "TenantSpec",
    "WorkloadSpec",
    "parse_quantity",
]

_UNITS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}

#: Operation kinds a mix may reference, in canonical order.
OP_KINDS = ("get", "put", "scan", "analytics")


def parse_quantity(text: str) -> float:
    """``"2ms"`` -> 0.002, ``"150us"`` -> 1.5e-4; bare numbers pass through."""
    for suffix in sorted(_UNITS, key=len, reverse=True):
        if text.endswith(suffix):
            head = text[: -len(suffix)]
            if head:
                try:
                    return float(head) * _UNITS[suffix]
                except ValueError:
                    break
    try:
        return float(text)
    except ValueError:
        raise ConfigurationError(f"cannot parse quantity {text!r}") from None


@dataclass(frozen=True)
class OpMix:
    """Per-tenant operation mix as fractions that must sum to 1.

    >>> mix = OpMix(get=0.9, put=0.1)
    >>> from random import Random
    >>> rng = Random("doc/mix")
    >>> sorted({mix.pick(rng) for _ in range(50)})
    ['get', 'put']
    """

    get: float = 0.0
    put: float = 0.0
    scan: float = 0.0
    analytics: float = 0.0

    def __post_init__(self) -> None:
        fractions = self.fractions()
        if any(f < 0 for f in fractions):
            raise ConfigurationError("op-mix fractions must be >= 0")
        total = sum(fractions)
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
            raise ConfigurationError(
                f"op-mix fractions must sum to 1 (got {total!r})"
            )

    def fractions(self) -> Tuple[float, float, float, float]:
        """The four fractions in canonical ``OP_KINDS`` order."""
        return (self.get, self.put, self.scan, self.analytics)

    def pick(self, rng) -> str:
        """Draw one op kind from *rng* according to the fractions."""
        roll = rng.random()
        acc = 0.0
        for kind, fraction in zip(OP_KINDS, self.fractions()):
            acc += fraction
            if roll < acc:
                return kind
        return OP_KINDS[-1]

    def describe(self) -> str:
        """Canonical ``get=0.9,put=0.1`` form (zero fractions omitted)."""
        return ",".join(
            f"{kind}={fraction!r}"
            for kind, fraction in zip(OP_KINDS, self.fractions())
            if fraction > 0
        )


class _Curve:
    """Base for arrival curves: rate(t) in ops/s over the sim clock."""

    def rate(self, t: float) -> float:
        raise NotImplementedError

    @property
    def peak_rate(self) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class SteadyCurve(_Curve):
    """Constant arrival rate."""

    steady: float

    def __post_init__(self) -> None:
        if self.steady <= 0:
            raise ConfigurationError("steady rate must be positive")

    def rate(self, t: float) -> float:
        return self.steady

    @property
    def peak_rate(self) -> float:
        return self.steady

    def describe(self) -> str:
        return f"steady rate={self.steady!r}"


@dataclass(frozen=True)
class DiurnalCurve(_Curve):
    """A compressed day: cosine ramp trough → peak → trough over *period*.

    ``rate(0) == trough``, ``rate(period / 2) == peak``; *phase* shifts
    the whole curve by a fraction of the period (0.25 puts the peak at
    three-quarters of the day — an "evening" tenant).
    """

    trough: float
    peak: float
    period: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.trough <= 0 or self.peak < self.trough:
            raise ConfigurationError(
                "diurnal curve needs 0 < trough <= peak"
            )
        if self.period <= 0:
            raise ConfigurationError("diurnal period must be positive")

    def rate(self, t: float) -> float:
        angle = 2.0 * math.pi * (t / self.period - self.phase)
        shape = (1.0 - math.cos(angle)) / 2.0
        return self.trough + (self.peak - self.trough) * shape

    @property
    def peak_rate(self) -> float:
        return self.peak

    def describe(self) -> str:
        tail = f" phase={self.phase!r}" if self.phase else ""
        return (
            f"diurnal trough={self.trough!r} peak={self.peak!r} "
            f"period={self.period!r}{tail}"
        )


@dataclass(frozen=True)
class BurstCurve(_Curve):
    """A flat base rate with one rectangular burst window."""

    base: float
    burst: float
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.base <= 0 or self.burst < self.base:
            raise ConfigurationError("burst curve needs 0 < base <= burst")
        if self.at < 0 or self.duration <= 0:
            raise ConfigurationError(
                "burst window needs at >= 0 and duration > 0"
            )

    def rate(self, t: float) -> float:
        if self.at <= t < self.at + self.duration:
            return self.burst
        return self.base

    @property
    def peak_rate(self) -> float:
        return self.burst

    def describe(self) -> str:
        return (
            f"burst base={self.base!r} burst={self.burst!r} "
            f"at={self.at!r} dur={self.duration!r}"
        )


@dataclass(frozen=True)
class StepCurve(_Curve):
    """Piecewise-constant rate: ``((start, rate), ...)``, first start 0."""

    steps: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ConfigurationError("step curve needs at least one step")
        if self.steps[0][0] != 0:
            raise ConfigurationError("step curve must start at t=0")
        last = -1.0
        for start, rate in self.steps:
            if start <= last:
                raise ConfigurationError(
                    "step starts must be strictly increasing"
                )
            if rate <= 0:
                raise ConfigurationError("step rates must be positive")
            last = start

    def rate(self, t: float) -> float:
        current = self.steps[0][1]
        for start, rate in self.steps:
            if t < start:
                break
            current = rate
        return current

    @property
    def peak_rate(self) -> float:
        return max(rate for _, rate in self.steps)

    def describe(self) -> str:
        body = ",".join(f"{s!r}={r!r}" for s, r in self.steps)
        return f"step {body}"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a name, an op mix, an arrival curve, and op shaping.

    ``scan_span`` is the number of consecutive keys a scan touches;
    ``analytics_span`` the number of Zipf-drawn keys one analytics
    scatter reads; ``value_size`` the put payload in bytes; ``weight``
    the tenant's share of the closed-loop worker population.
    """

    name: str
    mix: OpMix
    curve: _Curve
    scan_span: int = 16
    analytics_span: int = 64
    value_size: int = 64
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ConfigurationError("tenant name must be non-empty, no spaces")
        if self.scan_span < 1 or self.analytics_span < 1:
            raise ConfigurationError("tenant spans must be >= 1")
        if self.value_size < 1:
            raise ConfigurationError("tenant value_size must be >= 1")
        if self.weight <= 0:
            raise ConfigurationError("tenant weight must be positive")

    def describe(self) -> str:
        return (
            f"tenant {self.name} mix {self.mix.describe()} "
            f"curve {self.curve.describe()}"
        )


def _parse_kv(tokens: Sequence[str], context: str) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for token in tokens:
        if "=" not in token:
            raise ConfigurationError(
                f"{context}: expected key=value, got {token!r}"
            )
        key, _, value = token.partition("=")
        if key in out:
            raise ConfigurationError(f"{context}: duplicate key {key!r}")
        out[key] = value
    return out


def _parse_mix(text: str, context: str) -> OpMix:
    fractions = {}
    for part in text.split(","):
        kind, _, value = part.partition("=")
        if kind not in OP_KINDS:
            raise ConfigurationError(
                f"{context}: unknown op kind {kind!r} "
                f"(expected one of {', '.join(OP_KINDS)})"
            )
        fractions[kind] = parse_quantity(value)
    return OpMix(**fractions)


def _parse_curve(kind: str, tokens: Sequence[str], context: str) -> _Curve:
    if kind == "steady":
        kv = _parse_kv(tokens, context)
        return SteadyCurve(steady=parse_quantity(kv.pop("rate", "0")))
    if kind == "diurnal":
        kv = _parse_kv(tokens, context)
        return DiurnalCurve(
            trough=parse_quantity(kv.pop("trough", "0")),
            peak=parse_quantity(kv.pop("peak", "0")),
            period=parse_quantity(kv.pop("period", "0")),
            phase=parse_quantity(kv.pop("phase", "0")),
        )
    if kind == "burst":
        kv = _parse_kv(tokens, context)
        return BurstCurve(
            base=parse_quantity(kv.pop("base", "0")),
            burst=parse_quantity(kv.pop("burst", "0")),
            at=parse_quantity(kv.pop("at", "0")),
            duration=parse_quantity(kv.pop("dur", "0")),
        )
    if kind == "step":
        if len(tokens) != 1:
            raise ConfigurationError(
                f"{context}: step curve takes one start=rate,... token"
            )
        steps = []
        for part in tokens[0].split(","):
            start, _, rate = part.partition("=")
            steps.append((parse_quantity(start), parse_quantity(rate)))
        return StepCurve(steps=tuple(steps))
    raise ConfigurationError(
        f"{context}: unknown curve kind {kind!r} "
        "(expected steady, diurnal, burst, or step)"
    )


_TENANT_OPTIONS = ("scan_span", "analytics_span", "value_size", "weight")


@dataclass(frozen=True)
class WorkloadSpec:
    """A whole scenario: key universe, skew, and a set of tenants."""

    tenants: Tuple[TenantSpec, ...]
    key_count: int = 128
    zipf_skew: float = 1.0

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ConfigurationError("workload needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError("tenant names must be unique")
        if self.key_count < 1:
            raise ConfigurationError("workload key_count must be >= 1")

    @classmethod
    def parse(cls, text: str) -> "WorkloadSpec":
        """Parse the line-oriented spec format (see module docstring)."""
        key_count = 128
        zipf_skew = 1.0
        tenants: List[TenantSpec] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            tokens = line.split()
            context = f"workload spec line {lineno}"
            if tokens[0] == "keys" and len(tokens) == 2:
                key_count = int(tokens[1])
            elif tokens[0] == "zipf" and len(tokens) == 2:
                zipf_skew = float(tokens[1])
            elif tokens[0] == "tenant":
                tenants.append(cls._parse_tenant(tokens[1:], context))
            else:
                raise ConfigurationError(
                    f"{context}: expected 'keys', 'zipf', or 'tenant', "
                    f"got {tokens[0]!r}"
                )
        return cls(
            tenants=tuple(tenants),
            key_count=key_count,
            zipf_skew=zipf_skew,
        )

    @staticmethod
    def _parse_tenant(tokens: Sequence[str], context: str) -> TenantSpec:
        if len(tokens) < 5 or tokens[1] != "mix" or tokens[3] != "curve":
            raise ConfigurationError(
                f"{context}: expected 'tenant <name> mix <fractions> "
                "curve <kind> <args...>'"
            )
        name = tokens[0]
        mix = _parse_mix(tokens[2], context)
        curve_kind = tokens[4]
        rest = list(tokens[5:])
        options: Dict[str, float] = {}
        while rest and rest[-1].partition("=")[0] in _TENANT_OPTIONS:
            key, _, value = rest.pop().partition("=")
            options[key] = parse_quantity(value)
        curve = _parse_curve(curve_kind, rest, context)
        return TenantSpec(
            name=name,
            mix=mix,
            curve=curve,
            scan_span=int(options.get("scan_span", 16)),
            analytics_span=int(options.get("analytics_span", 64)),
            value_size=int(options.get("value_size", 64)),
            weight=options.get("weight", 1.0),
        )

    def peak_rate(self) -> float:
        """Sum of the tenants' curve peaks — worst-case offered ops/s."""
        return sum(t.curve.peak_rate for t in self.tenants)

    def rate(self, t: float) -> float:
        """Total offered rate at curve time *t* across every tenant."""
        return sum(t_.curve.rate(t) for t_ in self.tenants)

    def describe(self) -> str:
        """Canonical multi-line echo of the spec (deterministic)."""
        lines = [f"keys {self.key_count}", f"zipf {self.zipf_skew!r}"]
        lines.extend(t.describe() for t in self.tenants)
        return "\n".join(lines)
