"""SLO-driven autoscaling: telemetry firings → ShardMigrator actions.

The :class:`Autoscaler` closes the loop the ROADMAP asks for: instead
of an operator watching dashboards and running ``add_dpu`` by hand, a
policy maps two named :class:`~repro.telemetry.slo.SloRule` objectives
onto the two topology changes :class:`~repro.sharding.ShardMigrator`
offers:

* the **breach** rule (typically ``... op_latency p99 < X for D``)
  firing means the fleet is too small → ``add_dpu()``;
* the **idle** rule (typically ``... offered_rate value < Y for D``)
  firing — while the breach rule is healthy — means the fleet is too
  big → ``remove_dpu()`` on the newest member.

Hysteresis follows the brownout ladder's pattern
(:class:`~repro.overload.BrownoutController`): decisions are evaluated
on sampler ticks, each rule's own ``for``-duration debounces the
trigger, a *cooldown* separates consecutive actions, and at most one
migration is in flight at a time (the ``busy`` latch).  A drain is
additionally vetoed whenever the breach objective is firing, so the
controller cannot flap scale-out/drain across a breach/recover
boundary.

Every decision and completion is appended to a canonical event log
(:meth:`Autoscaler.event_log_bytes`): same seed, byte-identical log,
independent of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import ConfigurationError
from repro.sharding.migration import MigrationReport, ShardMigrator
from repro.telemetry.slo import SloAlert, SloMonitor

__all__ = ["AutoscalerPolicy", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerPolicy:
    """The operator-facing knobs (see ``docs/WORKLOADS.md``).

    Args:
        min_dpus: never drain below this fleet size.
        max_dpus: never scale out beyond this fleet size.
        breach_rule: name of the SLO rule whose firing demands capacity.
        idle_rule: name of the SLO rule whose firing permits draining.
        cooldown: minimum simulated time between *completed* actions —
            the dwell that keeps one migration's latency disturbance
            from triggering the next action.
    """

    min_dpus: int = 2
    max_dpus: int = 8
    breach_rule: str = "p99-breach"
    idle_rule: str = "fleet-idle"
    cooldown: float = 0.020

    def __post_init__(self) -> None:
        if self.min_dpus < 1:
            raise ConfigurationError("autoscaler min_dpus must be >= 1")
        if self.max_dpus < self.min_dpus:
            raise ConfigurationError(
                "autoscaler max_dpus must be >= min_dpus"
            )
        if self.breach_rule == self.idle_rule:
            raise ConfigurationError(
                "breach and idle must be distinct SLO rules"
            )
        if self.cooldown < 0:
            raise ConfigurationError("autoscaler cooldown must be >= 0")


class Autoscaler:
    """Subscribes to SLO firings and drives the migrator automatically.

    Wiring (all hook-based, no polling loops of its own):

    * ``monitor.sampler.on_sample`` → :meth:`check`, the decision step;
    * ``monitor.on_alert`` → observation lines in the event log;
    * ``migrator.on_migration`` → completion handling (clear the busy
      latch, start the cooldown clock, update the fleet gauge).

    The scaler also integrates fleet-size over simulated time
    (:meth:`dpu_seconds`) — the capacity-cost metric E20 compares
    against static provisioning.
    """

    def __init__(self, sim, monitor: SloMonitor, migrator: ShardMigrator,
                 policy: AutoscalerPolicy) -> None:
        self.sim = sim
        self.monitor = monitor
        self.migrator = migrator
        self.policy = policy
        self.cluster = migrator.cluster
        fleet = len(self.cluster.members())
        if fleet < policy.min_dpus:
            raise ConfigurationError(
                f"fleet starts at {fleet} < policy.min_dpus "
                f"{policy.min_dpus}"
            )
        self.events: List[str] = []
        self.busy = False
        self._direction: Optional[str] = None
        self._last_action: Optional[float] = None
        self._recorder = getattr(sim, "recorder", None)
        # dpu-seconds integral: accrued lazily at each fleet change.
        self._fleet = fleet
        self._since = sim.now
        self._integral = 0.0
        metrics = sim.telemetry.unique_scope("workload.autoscaler")
        self._fleet_gauge = metrics.gauge("fleet")
        self._fleet_gauge.set(fleet)
        self._scale_outs = metrics.counter("scale_outs")
        self._drains = metrics.counter("drains")
        monitor.sampler.on_sample.append(self.check)
        monitor.on_alert.append(self._on_alert)
        migrator.on_migration.append(self._on_migration)

    # -- accounting ----------------------------------------------------------
    @property
    def fleet(self) -> int:
        """Current ring size."""
        return len(self.cluster.members())

    @property
    def scale_outs(self) -> int:
        """Completed scale-out migrations driven by this scaler."""
        return self._scale_outs.value

    @property
    def drains(self) -> int:
        """Completed drain migrations driven by this scaler."""
        return self._drains.value

    def _accrue(self) -> None:
        now = self.sim.now
        self._integral += self._fleet * (now - self._since)
        self._since = now

    def dpu_seconds(self) -> float:
        """Fleet-size × simulated-time integral since construction."""
        self._accrue()
        return self._integral

    def event_log_bytes(self) -> bytes:
        """The decision/completion log as canonical bytes."""
        return "\n".join(self.events).encode()

    def _event(self, line: str) -> None:
        self.events.append(line)
        if self._recorder is not None:
            self._recorder.record("autoscale", line)

    # -- hook targets --------------------------------------------------------
    def _on_alert(self, alert: SloAlert) -> None:
        if alert.rule in (self.policy.breach_rule, self.policy.idle_rule):
            self._event(
                f"autoscale observe {alert.state} rule={alert.rule} "
                f"at={alert.at!r} value={alert.value!r}"
            )

    def check(self, now: float) -> None:
        """One decision step (normally invoked by the sampler)."""
        if self.busy:
            return
        if self._last_action is not None \
                and now - self._last_action < self.policy.cooldown:
            return
        firing = self.monitor.firing
        fleet = self.fleet
        if self.policy.breach_rule in firing:
            if fleet < self.policy.max_dpus:
                self._launch("scale-out", now, fleet)
            return
        if self.policy.idle_rule in firing and fleet > self.policy.min_dpus:
            self._launch("drain", now, fleet)

    def _launch(self, direction: str, now: float, fleet: int) -> None:
        self.busy = True
        self._direction = direction
        self._event(
            f"autoscale decide {direction} at={now!r} fleet={fleet}"
        )
        if direction == "scale-out":
            self.sim.process(self.migrator.add_dpu())
        else:
            # Drain the newest member: join order is deterministic and
            # the latest joiner holds the least-warm working set.
            victim = self.cluster.members()[-1]
            self.sim.process(self.migrator.remove_dpu(victim))

    def _on_migration(self, report: MigrationReport) -> None:
        if not self.busy:
            return  # topology change driven by someone else
        self._accrue()
        self._fleet = self.fleet
        self._fleet_gauge.set(self._fleet)
        if self._direction == "scale-out":
            self._scale_outs.inc()
        else:
            self._drains.inc()
        self._event(
            f"autoscale {self._direction} done node={report.node} "
            f"keys={report.keys_moved} epoch={report.epoch} "
            f"at={report.finished!r} fleet={self._fleet}"
        )
        self.busy = False
        self._direction = None
        self._last_action = report.finished
