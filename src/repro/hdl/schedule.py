"""Pipeline scheduling: ASAP placement of operations into hardware stages.

Given the per-block dataflow graph, operations with no mutual dependency
issue in the same stage (spatial parallelism); dependent operations go to
later stages. The schedule determines the pipeline's depth (latency in
cycles) and, together with memory ports, its initiation interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.ebpf.isa import Opcode, Program
from repro.hdl.dataflow import build_cfg, build_dfg
from repro.hdl.fusion import FusedOp, fuse_instructions


@dataclass
class PipelineSchedule:
    """The scheduled pipeline for one program."""

    program_name: str
    #: stages[i] = list of FusedOps issuing in cycle i
    stages: List[List[FusedOp]] = field(default_factory=list)
    #: cycles between accepting consecutive inputs
    initiation_interval: int = 1

    @property
    def depth(self) -> int:
        return len(self.stages)

    @property
    def width(self) -> int:
        return max((len(stage) for stage in self.stages), default=0)

    @property
    def op_count(self) -> int:
        return sum(len(stage) for stage in self.stages)

    def parallelism(self) -> float:
        """Average ops per stage: >1 means extracted ILP."""
        return self.op_count / self.depth if self.depth else 0.0


def _memory_ops_in(ops: Sequence[FusedOp]) -> int:
    count = 0
    for op in ops:
        for insn in op.instructions:
            if insn.is_load or insn.is_store or insn.opcode is Opcode.CALL:
                count += 1
    return count


def schedule_pipeline(
    program: Program,
    fuse: bool = True,
    memory_ports: int = 2,
) -> PipelineSchedule:
    """Schedule the whole program as a linearized pipeline.

    Control flow becomes predication (every block is scheduled; hardware
    evaluates all paths and selects results — the standard HLS flattening
    for short programs), so the pipeline depth is the sum over blocks of
    each block's critical path.
    """
    blocks = build_cfg(program)
    stages: List[List[FusedOp]] = []
    for block in blocks:
        if not block.instructions:
            continue
        dfg = build_dfg(block)
        ops = fuse_instructions(block.instructions, enabled=fuse)
        # Map instruction index -> op index.
        insn_to_op: Dict[int, int] = {}
        cursor = 0
        for op_index, op in enumerate(ops):
            for __ in op.instructions:
                insn_to_op[cursor] = op_index
                cursor += 1
        # ASAP levels over ops.
        op_level: Dict[int, int] = {}
        for insn_index in range(len(block.instructions)):
            op_index = insn_to_op[insn_index]
            level = 0
            for dep in dfg.edges.get(insn_index, ()):
                dep_op = insn_to_op[dep]
                if dep_op == op_index:
                    continue  # fused together: same stage
                level = max(level, op_level.get(dep_op, 0) + 1)
            op_level[op_index] = max(op_level.get(op_index, 0), level)
        block_depth = max(op_level.values(), default=-1) + 1
        block_stages: List[List[FusedOp]] = [[] for _ in range(block_depth)]
        for op_index, op in enumerate(ops):
            block_stages[op_level[op_index]].append(op)
        stages.extend(block_stages)

    schedule = PipelineSchedule(program_name=program.name, stages=stages)
    # Memory contention bounds the initiation interval: if any stage needs
    # more concurrent memory operations than ports, inputs must be spaced.
    worst = max((_memory_ops_in(stage) for stage in stages), default=0)
    schedule.initiation_interval = max(1, -(-worst // memory_ports))
    return schedule
