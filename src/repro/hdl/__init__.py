"""eBPF-to-HDL compilation: the backend half of the paper's §2.2 pipeline.

The flow mirrors the open-source compilers the paper builds on (hXDP, eHDL,
eBPF program warping): take verified eBPF, extract instruction-level
parallelism from the dataflow graph, fuse adjacent instructions into macro
operations, schedule the result into pipeline stages, emit a Verilog-like
module, and estimate FPGA area and clock frequency. The executable
:class:`HardwarePipeline` model gives the compiled program its defining
hardware property: fixed-latency, zero-jitter execution (paper §2's
"predictable performance").
"""

from repro.hdl.dataflow import BasicBlock, DataflowGraph, build_cfg, build_dfg
from repro.hdl.fusion import FusedOp, fuse_instructions
from repro.hdl.schedule import PipelineSchedule, schedule_pipeline
from repro.hdl.codegen import generate_verilog
from repro.hdl.resources import AreaEstimate, estimate_area, estimate_fmax
from repro.hdl.engine import CompiledPipeline, HardwarePipeline, compile_program

__all__ = [
    "BasicBlock",
    "DataflowGraph",
    "build_cfg",
    "build_dfg",
    "FusedOp",
    "fuse_instructions",
    "PipelineSchedule",
    "schedule_pipeline",
    "generate_verilog",
    "AreaEstimate",
    "estimate_area",
    "estimate_fmax",
    "CompiledPipeline",
    "HardwarePipeline",
    "compile_program",
]
