"""Pre-scheduling eBPF optimization: constant propagation and dead code.

The paper builds on "Faster Software Packet Processing on FPGA NICs with
eBPF Program Warping" [35]: rewrite the program *before* lowering so fewer
operations reach the hardware at all. Two classical passes, applied per
basic block until fixpoint:

* **constant folding/propagation** — ALU ops whose operands are known
  become MOVs of the folded constant;
* **dead-code elimination** — ALU/MOV results never observed (overwritten
  or unread before the block ends, for registers dead at block exit) are
  deleted.

The passes are conservative across control flow: only values proven inside
one block are folded, and only registers not live out of a block are
eliminated — so the optimizer is semantics-preserving for every verifier-
accepted program (checked by the hypothesis equivalence suite).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ebpf.isa import (
    ALU_OPS,
    Instruction,
    Opcode,
    Program,
)
from repro.hdl.dataflow import BasicBlock, build_cfg, _reads, _writes

_U64 = (1 << 64) - 1


def _fold(op: Opcode, dst: int, src: int) -> Optional[int]:
    """Evaluate one ALU op over known 64-bit constants."""
    if op is Opcode.ADD:
        return (dst + src) & _U64
    if op is Opcode.SUB:
        return (dst - src) & _U64
    if op is Opcode.MUL:
        return (dst * src) & _U64
    if op is Opcode.DIV:
        return (dst // src) & _U64 if src else 0
    if op is Opcode.MOD:
        return (dst % src) & _U64 if src else dst
    if op is Opcode.OR:
        return dst | src
    if op is Opcode.AND:
        return dst & src
    if op is Opcode.XOR:
        return dst ^ src
    if op is Opcode.LSH:
        return (dst << (src & 63)) & _U64
    if op is Opcode.RSH:
        return dst >> (src & 63)
    if op is Opcode.NEG:
        return (-dst) & _U64
    return None


def _fits_imm(value: int) -> bool:
    """MOV's 32-bit immediate field (sign-extended) can hold this value."""
    return value < (1 << 31) or value >= _U64 - (1 << 31) + 1


def _propagate_block(instructions: List[Instruction]) -> List[Instruction]:
    """Constant propagation + folding over one straight-line block."""
    known: Dict[int, int] = {}
    out: List[Instruction] = []
    for insn in instructions:
        op = insn.opcode
        if op is Opcode.LDDW:
            known[insn.dst] = insn.imm & _U64
            out.append(insn)
            continue
        if op is Opcode.MOV and not insn.uses_reg_src:
            known[insn.dst] = insn.imm & _U64
            out.append(insn)
            continue
        if op is Opcode.MOV and insn.uses_reg_src and insn.src in known:
            value = known[insn.src]
            if _fits_imm(value):
                known[insn.dst] = value
                out.append(Instruction(Opcode.MOV, dst=insn.dst, imm=_signed32(value)))
                continue
            known[insn.dst] = value
            out.append(insn)
            continue
        if insn.is_alu and op is not Opcode.MOV:
            dst_known = insn.dst in known
            src_value: Optional[int]
            if op is Opcode.NEG:
                src_value = 0
                have_src = True
            elif insn.uses_reg_src:
                src_value = known.get(insn.src)
                have_src = src_value is not None
            else:
                src_value = insn.imm & _U64
                have_src = True
            if dst_known and have_src:
                folded = _fold(op, known[insn.dst], src_value)
                if folded is not None and _fits_imm(folded):
                    known[insn.dst] = folded
                    out.append(
                        Instruction(Opcode.MOV, dst=insn.dst, imm=_signed32(folded))
                    )
                    continue
            # Unknown result: the destination is no longer constant.
            known.pop(insn.dst, None)
            out.append(insn)
            continue
        # Loads, calls, stores, jumps: clobbered registers become unknown.
        for reg in _writes(insn):
            known.pop(reg, None)
        out.append(insn)
    return out


def _signed32(value: int) -> int:
    value &= 0xFFFF_FFFF_FFFF_FFFF
    if value >= _U64 - (1 << 31) + 1:
        return value - (1 << 64)
    return value


def _eliminate_dead_block(
    instructions: List[Instruction], live_out: Set[int]
) -> List[Instruction]:
    """Backward pass: drop pure ops whose results are never observed."""
    live = set(live_out)
    kept_reversed: List[Instruction] = []
    for insn in reversed(instructions):
        writes = _writes(insn)
        pure = (insn.is_alu or insn.opcode is Opcode.LDDW) and not insn.is_store
        if pure and writes and not (writes & live):
            continue  # dead: result never read
        for reg in writes:
            live.discard(reg)
        live |= _reads(insn)
        kept_reversed.append(insn)
    return list(reversed(kept_reversed))


def optimize_program(program: Program, max_rounds: int = 4) -> Program:
    """Apply folding + DCE per basic block until fixpoint.

    Registers are conservatively assumed live out of every block except
    that nothing is live out of an EXIT block beyond the EXIT itself
    (which reads r0). Blocks ending in jumps keep all registers live.
    """
    instructions = list(program.instructions)
    for _ in range(max_rounds):
        blocks = build_cfg(Program(instructions, name=program.name))
        changed = False
        rebuilt: List[Instruction] = []
        for block in blocks:
            body = block.instructions
            folded = _propagate_block(body)
            if block.successors:
                live_out = set(range(11))  # conservative across edges
            else:
                live_out = set()  # EXIT's own read of r0 is handled by _reads
            cleaned = _eliminate_dead_block(folded, live_out)
            if cleaned != body:
                changed = True
            rebuilt.extend(cleaned)
        if not changed:
            break
        if _block_spans_changed(blocks, rebuilt):
            # Branch offsets would shift; only rewrite when every block kept
            # its slot span (conservative: otherwise stop optimizing).
            break
        instructions = rebuilt
    return Program(instructions, name=program.name)


def _block_spans_changed(blocks: List[BasicBlock], rebuilt: List[Instruction]) -> bool:
    """True when instruction deletion changed any block's slot span (which
    would invalidate branch offsets)."""
    original = sum(b.slot_span for b in blocks)
    new = sum(insn.slots for insn in rebuilt)
    return original != new


def optimize_straightline(program: Program, max_rounds: int = 8) -> Program:
    """Aggressive variant for single-block programs (no branch offsets to
    preserve): folding and DCE genuinely shrink the program."""
    blocks = build_cfg(program)
    if len(blocks) != 1:
        return optimize_program(program, max_rounds=max_rounds)
    instructions = list(program.instructions)
    for _ in range(max_rounds):
        folded = _propagate_block(instructions)
        cleaned = _eliminate_dead_block(folded, live_out=set())
        if cleaned == instructions:
            break
        instructions = cleaned
    return Program(instructions, name=program.name)
