"""The compiler driver and the executable hardware-pipeline model.

``compile_program`` runs the full §2.2 flow: verify -> extract parallelism
-> fuse -> schedule -> codegen -> estimate. The resulting
:class:`HardwarePipeline` executes programs with *fixed* latency and an
initiation-interval-limited accept rate — the zero-jitter property that the
predictability experiment (E6) measures against CPU execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import VerificationError
from repro.ebpf.helpers import HelperRegistry
from repro.ebpf.isa import Program
from repro.ebpf.maps import BpfMap
from repro.ebpf.vm import BpfVm, ExecutionResult
from repro.hw.fpga.bitstream import Bitstream
from repro.ebpf.verifier import Verifier, VerifierReport
from repro.hdl.codegen import generate_verilog
from repro.hdl.resources import AreaEstimate, estimate
from repro.hdl.schedule import PipelineSchedule, schedule_pipeline
from repro.sim import Resource, Simulator


@dataclass
class CompiledPipeline:
    """Everything the compiler produces for one program."""

    program: Program
    schedule: PipelineSchedule
    verilog: str
    area: AreaEstimate
    verifier_report: VerifierReport

    def to_bitstream(self, name: Optional[str] = None) -> Bitstream:
        """Package as a loadable bitstream for a reconfigurable slot.

        Bitstream size scales with consumed area. The floor is the partial
        image of one slot (~1/5 of a U280's ~60 MiB configuration space);
        at ICAP bandwidth that lands loads in the paper's 10-100 ms band.
        """
        frames = max(1, self.area.resources.luts // 8)
        size_bytes = 12 * 1024 * 1024 + frames * 1024
        return Bitstream(
            name=name or self.program.name,
            resources=self.area.resources,
            size_bytes=size_bytes,
            clock_hz=self.area.fmax_hz,
            kernel=self,
        )


def compile_program(
    program: Program,
    verify: bool = True,
    fuse: bool = True,
    optimize: bool = False,
    memory_ports: int = 2,
    helpers: Optional[HelperRegistry] = None,
    allow_bounded_loops: bool = False,
) -> CompiledPipeline:
    """Verify and compile an eBPF program into a hardware pipeline.

    ``optimize=True`` runs the warping-style folding/DCE passes
    (:mod:`repro.hdl.optimize`) before scheduling.
    """
    if verify:
        report = Verifier(
            helpers=helpers, allow_bounded_loops=allow_bounded_loops
        ).verify(program)
        if not report.ok:
            raise VerificationError(
                f"program {program.name!r} rejected: {report.reject_reason()}"
            )
    else:
        report = VerifierReport(ok=True)
    if optimize:
        from repro.hdl.optimize import optimize_straightline

        program = optimize_straightline(program)
    schedule = schedule_pipeline(program, fuse=fuse, memory_ports=memory_ports)
    return CompiledPipeline(
        program=program,
        schedule=schedule,
        verilog=generate_verilog(schedule),
        area=estimate(schedule),
        verifier_report=report,
    )


class HardwarePipeline:
    """Executes a compiled program with hardware timing semantics.

    * Results are functionally identical to the interpreter (the pipeline
      wraps a :class:`BpfVm` for semantics).
    * Latency is **fixed**: ``depth / f_max`` for every input, no jitter.
    * Throughput is bounded by the initiation interval: the input port is
      held for ``II`` cycles per accepted tuple.
    """

    def __init__(
        self,
        sim: Simulator,
        compiled: CompiledPipeline,
        maps: Optional[Dict[int, BpfMap]] = None,
        helpers: Optional[HelperRegistry] = None,
    ):
        self.sim = sim
        self.compiled = compiled
        self._vm = BpfVm(compiled.program, maps=maps, helpers=helpers)
        self._input_port = Resource(sim, capacity=1)
        self.executions = 0

    @property
    def latency(self) -> float:
        return self.compiled.area.fixed_latency

    @property
    def accept_interval(self) -> float:
        area = self.compiled.area
        return area.initiation_interval * area.cycle_time

    def execute(self, context: bytes = b""):
        """Process: one input through the pipeline; returns ExecutionResult."""
        yield self._input_port.request()
        try:
            # The port is busy for II cycles per input...
            yield self.sim.timeout(self.accept_interval)
        finally:
            self._input_port.release()
        # ...then the input drains through the remaining stages.
        remaining = max(0.0, self.latency - self.accept_interval)
        yield self.sim.timeout(remaining)
        self.executions += 1
        return self._vm.run(context)

    def execute_now(self, context: bytes = b"") -> ExecutionResult:
        """Functional-only execution (no simulated time)."""
        return self._vm.run(context)
