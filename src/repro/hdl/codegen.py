"""Verilog-like code generation for a scheduled pipeline.

The emitted text is structurally honest Verilog-2001 (module/ports/always
blocks, one stage register bank per pipeline stage, AXI-Stream handshakes on
both ends — the interface the Figure 2 arbiter expects), intended for
inspection and size accounting rather than synthesis.
"""

from __future__ import annotations

from typing import List

from repro.ebpf.isa import Instruction, Opcode
from repro.hdl.schedule import PipelineSchedule

_ALU_VERILOG = {
    Opcode.ADD: "+",
    Opcode.SUB: "-",
    Opcode.MUL: "*",
    Opcode.DIV: "/",
    Opcode.MOD: "%",
    Opcode.OR: "|",
    Opcode.AND: "&",
    Opcode.XOR: "^",
    Opcode.LSH: "<<",
    Opcode.RSH: ">>",
    Opcode.ARSH: ">>>",
}

_JUMP_VERILOG = {
    Opcode.JEQ: "==",
    Opcode.JNE: "!=",
    Opcode.JGT: ">",
    Opcode.JGE: ">=",
    Opcode.JLT: "<",
    Opcode.JLE: "<=",
    Opcode.JSGT: ">",
    Opcode.JSGE: ">=",
    Opcode.JSLT: "<",
    Opcode.JSLE: "<=",
    Opcode.JSET: "&",
}


def _expr(insn: Instruction, stage: int) -> str:
    """One instruction as a Verilog assignment inside its stage."""
    prev = f"s{stage}"
    op = insn.opcode
    if op is Opcode.MOV:
        src = f"{prev}_r{insn.src}" if insn.uses_reg_src else f"64'd{insn.imm & ((1<<64)-1)}"
        return f"r{insn.dst} <= {src};"
    if op is Opcode.LDDW:
        return f"r{insn.dst} <= 64'h{insn.imm & ((1 << 64) - 1):x};"
    if op is Opcode.NEG:
        return f"r{insn.dst} <= -{prev}_r{insn.dst};"
    if op in _ALU_VERILOG:
        src = f"{prev}_r{insn.src}" if insn.uses_reg_src else f"64'd{insn.imm & ((1<<64)-1)}"
        return f"r{insn.dst} <= {prev}_r{insn.dst} {_ALU_VERILOG[op]} {src};"
    if insn.is_load:
        return (
            f"r{insn.dst} <= mem_rdata; // load [r{insn.src}"
            f"{insn.offset:+d}]"
        )
    if insn.is_store:
        value = f"{prev}_r{insn.src}" if op.value.startswith("stx") else f"64'd{insn.imm & ((1<<64)-1)}"
        return f"mem_wdata <= {value}; // store [r{insn.dst}{insn.offset:+d}]"
    if op in _JUMP_VERILOG:
        src = f"{prev}_r{insn.src}" if insn.uses_reg_src else f"64'd{insn.imm & ((1<<64)-1)}"
        return (
            f"branch_taken <= ({prev}_r{insn.dst} {_JUMP_VERILOG[op]} {src});"
        )
    if op is Opcode.JA:
        return "branch_taken <= 1'b1;"
    if op is Opcode.CALL:
        return f"helper_id <= 32'd{insn.imm}; helper_req <= 1'b1;"
    if op is Opcode.EXIT:
        return "out_valid <= 1'b1; out_value <= r0;"
    return f"// unhandled {op.value}"


def generate_verilog(schedule: PipelineSchedule, module_name: str = "") -> str:
    """Emit the pipeline as a Verilog module string."""
    name = module_name or f"ebpf_{schedule.program_name}"
    lines: List[str] = []
    lines.append(f"// Generated from eBPF program '{schedule.program_name}'")
    lines.append(
        f"// depth={schedule.depth} II={schedule.initiation_interval} "
        f"width={schedule.width}"
    )
    lines.append(f"module {name} (")
    lines.append("    input  wire         clk,")
    lines.append("    input  wire         rst_n,")
    lines.append("    // AXI-Stream slave (input tuples)")
    lines.append("    input  wire [511:0] s_axis_tdata,")
    lines.append("    input  wire         s_axis_tvalid,")
    lines.append("    output wire         s_axis_tready,")
    lines.append("    // AXI-Stream master (results)")
    lines.append("    output reg  [63:0]  m_axis_tdata,")
    lines.append("    output reg          m_axis_tvalid,")
    lines.append("    input  wire         m_axis_tready")
    lines.append(");")
    lines.append("")
    lines.append(f"    // {schedule.depth} pipeline stage register banks")
    for stage_index in range(schedule.depth):
        lines.append(f"    reg [63:0] s{stage_index}_r0, s{stage_index}_r1;")
    lines.append("")
    for stage_index, stage in enumerate(schedule.stages):
        lines.append(f"    // ---- stage {stage_index} "
                     f"({len(stage)} parallel op(s)) ----")
        lines.append("    always @(posedge clk) begin")
        for op in stage:
            if op.is_fused:
                lines.append(f"        // fused: {op.describe()}")
            for insn in op.instructions:
                lines.append(f"        {_expr(insn, stage_index)}")
        lines.append("    end")
        lines.append("")
    lines.append("    assign s_axis_tready = 1'b1;")
    lines.append("endmodule")
    return "\n".join(lines)
