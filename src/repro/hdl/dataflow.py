"""Control-flow and dataflow analysis over eBPF programs.

Parallelism extraction (paper §2.2: "a set of open-source compilers for
parallelism extraction") starts here: basic blocks give the control
skeleton; the per-block dataflow graph exposes which instructions have no
mutual dependencies and can issue in the same hardware stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ebpf.isa import Instruction, Opcode, Program


@dataclass
class BasicBlock:
    """A straight-line run of instructions with one entry and one exit."""

    index: int
    start_slot: int
    instructions: List[Instruction] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)

    @property
    def slot_span(self) -> int:
        return sum(insn.slots for insn in self.instructions)


def _leaders(program: Program) -> List[int]:
    """Slot indices where basic blocks begin."""
    leaders: Set[int] = {0}
    slot = 0
    for insn in program:
        next_slot = slot + insn.slots
        if insn.is_cond_jump or insn.opcode is Opcode.JA:
            leaders.add(slot + 1 + insn.offset)
            leaders.add(next_slot)
        elif insn.opcode is Opcode.EXIT:
            leaders.add(next_slot)
        slot = next_slot
    return sorted(index for index in leaders if 0 <= index < len(program))


def build_cfg(program: Program) -> List[BasicBlock]:
    """Split into basic blocks and wire successor edges."""
    leader_slots = _leaders(program)
    slot_to_block: Dict[int, int] = {}
    blocks: List[BasicBlock] = []
    for index, start in enumerate(leader_slots):
        blocks.append(BasicBlock(index=index, start_slot=start))
        slot_to_block[start] = index

    # Fill instructions.
    slot = 0
    current: Optional[BasicBlock] = None
    for insn in program:
        if slot in slot_to_block:
            current = blocks[slot_to_block[slot]]
        assert current is not None
        current.instructions.append(insn)
        slot += insn.slots

    # Wire successors.
    for block in blocks:
        if not block.instructions:
            continue
        last = block.instructions[-1]
        end_slot = block.start_slot + block.slot_span
        if last.opcode is Opcode.EXIT:
            continue
        if last.opcode is Opcode.JA:
            target = (end_slot - 1) + 1 + last.offset
            block.successors.append(slot_to_block[target])
            continue
        if last.is_cond_jump:
            target = (end_slot - 1) + 1 + last.offset
            block.successors.append(slot_to_block[target])
        if end_slot in slot_to_block:
            block.successors.append(slot_to_block[end_slot])
    return blocks


@dataclass
class DataflowGraph:
    """RAW/WAR/WAW dependencies between the instructions of one block."""

    instructions: List[Instruction]
    #: edges[i] = set of instruction indices that i depends on
    edges: Dict[int, Set[int]]

    def independent_pairs(self) -> List[Tuple[int, int]]:
        """Pairs with no dependency either way — the extractable ILP."""
        pairs = []
        closure = self._transitive_closure()
        for i in range(len(self.instructions)):
            for j in range(i + 1, len(self.instructions)):
                if i not in closure[j] and j not in closure[i]:
                    pairs.append((i, j))
        return pairs

    def _transitive_closure(self) -> Dict[int, Set[int]]:
        closure: Dict[int, Set[int]] = {}
        for i in range(len(self.instructions)):
            reach: Set[int] = set()
            stack = list(self.edges.get(i, ()))
            while stack:
                dep = stack.pop()
                if dep not in reach:
                    reach.add(dep)
                    stack.extend(self.edges.get(dep, ()))
            closure[i] = reach
        return closure


def _reads(insn: Instruction) -> Set[int]:
    regs: Set[int] = set()
    op = insn.opcode
    if op is Opcode.CALL:
        return {1, 2, 3, 4, 5}
    if op is Opcode.EXIT:
        return {0}
    if op is Opcode.LDDW:
        return set()
    if insn.is_alu:
        if op is not Opcode.MOV and op is not Opcode.NEG:
            regs.add(insn.dst)
        if op is Opcode.NEG:
            regs.add(insn.dst)
        if insn.uses_reg_src:
            regs.add(insn.src)
        return regs
    if insn.is_load:
        return {insn.src}
    if insn.is_store:
        regs.add(insn.dst)
        if op.value.startswith("stx"):
            regs.add(insn.src)
        return regs
    if insn.is_cond_jump:
        regs.add(insn.dst)
        if insn.uses_reg_src:
            regs.add(insn.src)
        return regs
    return regs


def _writes(insn: Instruction) -> Set[int]:
    op = insn.opcode
    if op is Opcode.CALL:
        return {0, 1, 2, 3, 4, 5}
    if insn.is_alu or insn.is_load or op is Opcode.LDDW:
        return {insn.dst}
    return set()


def _touches_memory(insn: Instruction) -> bool:
    return insn.is_load or insn.is_store or insn.opcode is Opcode.CALL


def build_dfg(block: BasicBlock) -> DataflowGraph:
    """Dependency edges within one block (memory ops stay ordered)."""
    instructions = block.instructions
    edges: Dict[int, Set[int]] = {i: set() for i in range(len(instructions))}
    last_writer: Dict[int, int] = {}
    last_readers: Dict[int, List[int]] = {}
    last_memory: Optional[int] = None
    for i, insn in enumerate(instructions):
        reads = _reads(insn)
        writes = _writes(insn)
        for reg in reads:  # RAW
            if reg in last_writer:
                edges[i].add(last_writer[reg])
        for reg in writes:  # WAW and WAR
            if reg in last_writer:
                edges[i].add(last_writer[reg])
            for reader in last_readers.get(reg, ()):
                if reader != i:
                    edges[i].add(reader)
        if _touches_memory(insn):
            if last_memory is not None:
                edges[i].add(last_memory)
            last_memory = i
        for reg in reads:
            last_readers.setdefault(reg, []).append(i)
        for reg in writes:
            last_writer[reg] = i
            last_readers[reg] = []
    return DataflowGraph(instructions=instructions, edges=edges)
