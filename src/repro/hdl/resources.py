"""Area and clock-frequency estimation for scheduled pipelines.

Per-operation costs are calibrated to published UltraScale+ synthesis
results for 64-bit datapaths (an adder ~64 LUTs + carry, a multiplier maps
to DSP slices, barrel shifters ~200 LUTs, memory ops consume BRAM ports).
Absolute numbers matter less than the *relative* shape: fusion saves pipeline
registers, wide stages cost area, deep logic lowers f_max.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.ebpf.isa import Instruction, Opcode
from repro.hw.fpga.resources import FabricResources
from repro.hdl.schedule import PipelineSchedule

#: LUTs per 64-bit operation.
_LUT_COST: Dict[Opcode, int] = {
    Opcode.ADD: 64,
    Opcode.SUB: 64,
    Opcode.MUL: 16,  # mostly DSPs
    Opcode.DIV: 1200,  # iterative divider
    Opcode.MOD: 1200,
    Opcode.OR: 32,
    Opcode.AND: 32,
    Opcode.XOR: 32,
    Opcode.LSH: 210,
    Opcode.RSH: 210,
    Opcode.ARSH: 220,
    Opcode.NEG: 64,
    Opcode.MOV: 0,  # wires
    Opcode.LDDW: 0,  # constant
    Opcode.JA: 4,
    Opcode.CALL: 300,  # helper interface FSM
    Opcode.EXIT: 8,
}
_COND_JUMP_LUTS = 70  # 64-bit comparator + mux
_MEM_OP_LUTS = 120  # address calc + port interface
_DSP_OPS = {Opcode.MUL: 7}  # 64x64 multiply needs several DSP48s

#: Flip-flops per pipeline register (one live 64-bit value).
_FFS_PER_STAGE_REG = 64

#: Achievable clock by deepest combinational stage (ops chained by fusion
#: deepen logic; wide stages add routing pressure).
_BASE_FMAX = 450e6
_FMAX_PENALTY_PER_CHAINED_OP = 0.12
_FMAX_PENALTY_PER_EXTRA_WIDTH = 0.015


@dataclass(frozen=True)
class AreaEstimate:
    """Estimated fabric cost and clock of one compiled pipeline."""

    resources: FabricResources
    fmax_hz: float
    pipeline_depth: int
    initiation_interval: int

    @property
    def cycle_time(self) -> float:
        return 1.0 / self.fmax_hz

    @property
    def fixed_latency(self) -> float:
        """Input-to-output latency: depth cycles, no jitter."""
        return self.pipeline_depth * self.cycle_time

    @property
    def throughput_ops(self) -> float:
        """Sustained inputs/second at the initiation interval."""
        return self.fmax_hz / self.initiation_interval


def _insn_luts(insn: Instruction) -> int:
    if insn.is_cond_jump:
        return _COND_JUMP_LUTS
    if insn.is_load or insn.is_store:
        return _MEM_OP_LUTS
    return _LUT_COST.get(insn.opcode, 64)


def estimate_area(schedule: PipelineSchedule) -> FabricResources:
    luts = 0
    dsps = 0
    brams = 0
    ffs = 0
    for stage in schedule.stages:
        live_values = max(1, len(stage))
        ffs += live_values * _FFS_PER_STAGE_REG
        for op in stage:
            for insn in op.instructions:
                luts += _insn_luts(insn)
                dsps += _DSP_OPS.get(insn.opcode, 0)
                if insn.is_load or insn.is_store:
                    brams += 1
    return FabricResources(luts=luts, ffs=ffs, brams=brams, dsps=dsps)


def estimate_fmax(schedule: PipelineSchedule) -> float:
    worst_chain = 1
    for stage in schedule.stages:
        for op in stage:
            worst_chain = max(worst_chain, len(op.instructions))
    width_penalty = max(0, schedule.width - 4) * _FMAX_PENALTY_PER_EXTRA_WIDTH
    chain_penalty = (worst_chain - 1) * _FMAX_PENALTY_PER_CHAINED_OP
    return _BASE_FMAX / (1.0 + chain_penalty + width_penalty)


def estimate(schedule: PipelineSchedule) -> AreaEstimate:
    return AreaEstimate(
        resources=estimate_area(schedule),
        fmax_hz=estimate_fmax(schedule),
        pipeline_depth=schedule.depth,
        initiation_interval=schedule.initiation_interval,
    )
