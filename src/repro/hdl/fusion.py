"""Instruction fusion: merging dependent pairs into single macro-ops.

The eHDL compiler the paper cites turns eBPF/XDP programs into hardware by,
among other things, fusing adjacent instructions whose composition is still
a single combinational function (e.g. ``mov`` feeding an ``add``, a mask
feeding a shift, a compare feeding its branch). Fusion removes pipeline
stages and registers, which the E10 ablation quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.ebpf.isa import Instruction, Opcode

#: ALU pairs that remain one LUT level when composed.
_FUSABLE_ALU = {
    Opcode.MOV,
    Opcode.ADD,
    Opcode.SUB,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.LSH,
    Opcode.RSH,
}


@dataclass
class FusedOp:
    """One scheduled operation: a single instruction or a fused chain."""

    instructions: List[Instruction] = field(default_factory=list)

    @property
    def is_fused(self) -> bool:
        return len(self.instructions) > 1

    @property
    def primary(self) -> Instruction:
        return self.instructions[-1]

    def describe(self) -> str:
        return "+".join(insn.opcode.value for insn in self.instructions)


def _writes_dst(insn: Instruction) -> Optional[int]:
    if insn.is_alu or insn.is_load or insn.opcode is Opcode.LDDW:
        return insn.dst
    return None


def _can_fuse(first: Instruction, second: Instruction) -> bool:
    """Fuse ``first -> second`` when second's only input is first's output
    and both are cheap combinational ALU ops."""
    if first.opcode not in _FUSABLE_ALU or second.opcode not in _FUSABLE_ALU:
        # compare+branch fusion: ALU producing a value consumed by a branch
        if (
            first.opcode in _FUSABLE_ALU
            and second.is_cond_jump
            and _writes_dst(first) == second.dst
        ):
            return True
        return False
    produced = _writes_dst(first)
    if produced is None:
        return False
    # second must consume the produced register.
    if second.uses_reg_src and second.src == produced:
        return True
    if second.dst == produced and second.opcode is not Opcode.MOV:
        return True
    if second.opcode is Opcode.MOV and second.uses_reg_src and second.src == produced:
        return True
    return False


def fuse_instructions(instructions: Sequence[Instruction],
                      enabled: bool = True) -> List[FusedOp]:
    """Greedy pairwise fusion over a straight-line instruction list."""
    if not enabled:
        return [FusedOp([insn]) for insn in instructions]
    fused: List[FusedOp] = []
    index = 0
    while index < len(instructions):
        current = instructions[index]
        if index + 1 < len(instructions) and _can_fuse(
            current, instructions[index + 1]
        ):
            fused.append(FusedOp([current, instructions[index + 1]]))
            index += 2
        else:
            fused.append(FusedOp([current]))
            index += 1
    return fused


def fusion_ratio(instructions: Sequence[Instruction]) -> float:
    """Fraction of instructions eliminated as separate ops by fusion."""
    if not instructions:
        return 0.0
    ops = fuse_instructions(instructions)
    return 1.0 - len(ops) / len(instructions)
