"""Energy accounting: component TDPs and integrated energy over sim time."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class ComponentPower:
    """One component's TDP envelope in watts."""

    name: str
    tdp_watts: float

    def __post_init__(self) -> None:
        if self.tdp_watts <= 0:
            raise ConfigurationError("TDP must be positive")


#: The Hyperion DPU bill of materials (paper: "approx. 230 Watts"):
#: one U280 (225 W max TDP per the datasheet is the card cap; typical
#: configuration budget ~150 W) + 4 NVMe SSDs + crossover board.
HYPERION_POWER: Dict[str, ComponentPower] = {
    "alveo-u280": ComponentPower("alveo-u280", 170.0),
    "nvme-0": ComponentPower("nvme-0", 12.0),
    "nvme-1": ComponentPower("nvme-1", 12.0),
    "nvme-2": ComponentPower("nvme-2", 12.0),
    "nvme-3": ComponentPower("nvme-3", 12.0),
    "xover-board+clk": ComponentPower("xover-board+clk", 12.0),
}


def total_tdp(components: Dict[str, ComponentPower]) -> float:
    return sum(component.tdp_watts for component in components.values())


class EnergyMeter:
    """Integrates power over busy time per component.

    ``charge(name, duration, utilization)`` adds
    ``tdp * utilization * duration`` joules; experiments charge the meters
    as their datapaths run.
    """

    def __init__(self, components: Dict[str, ComponentPower]):
        self.components = dict(components)
        self.joules: Dict[str, float] = {name: 0.0 for name in components}

    def charge(self, name: str, duration: float, utilization: float = 1.0) -> None:
        if name not in self.components:
            raise ConfigurationError(f"unknown component {name}")
        if duration < 0 or not 0 <= utilization <= 1:
            raise ConfigurationError("bad duration/utilization")
        self.joules[name] += self.components[name].tdp_watts * utilization * duration

    def total_joules(self) -> float:
        return sum(self.joules.values())

    def energy_per_op(self, operations: int) -> float:
        if operations <= 0:
            raise ConfigurationError("need at least one operation")
        return self.total_joules() / operations
