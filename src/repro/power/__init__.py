"""Power and volume models for the efficiency claims (paper §2, E1)."""

from repro.power.energy import ComponentPower, EnergyMeter, HYPERION_POWER
from repro.power.volume import HYPERION_VOLUME, DeviceVolume, volume_ratio

__all__ = [
    "ComponentPower",
    "EnergyMeter",
    "HYPERION_POWER",
    "DeviceVolume",
    "HYPERION_VOLUME",
    "volume_ratio",
]
