"""Physical volume models for the compactness claim (paper §2, Figure 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class DeviceVolume:
    """A device's bounding box in millimetres."""

    name: str
    dimensions_mm: Tuple[float, float, float]

    @property
    def liters(self) -> float:
        w, h, d = self.dimensions_mm
        return (w * h * d) / 1e6


#: The Figure 1 prototype footprint: the paper annotates the assembly as
#: roughly 20.7 cm x 29.7 cm (an A4 sheet); the height is the dual-slot
#: U280 card thickness (~40 mm), which dominates the riser stack.
HYPERION_VOLUME = DeviceVolume("hyperion", (207.0, 40.0, 297.0))


def volume_ratio(larger: DeviceVolume, smaller: DeviceVolume) -> float:
    """How many times bigger ``larger`` is."""
    return larger.liters / smaller.liters
