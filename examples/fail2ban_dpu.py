#!/usr/bin/env python3
"""fail2ban running standalone on a CPU-free DPU vs a conventional server.

The same eBPF ban filter — verified once — processes the same synthetic
attack trace on both systems (paper §2.4, workload 1). The DPU path is
NIC -> hardware pipeline -> NVMe log; the server path pays interrupts,
syscalls, copies, and interpreter jitter per packet.

Run: ``python examples/fail2ban_dpu.py``
"""

from repro.apps.fail2ban import (
    Fail2BanBaseline,
    Fail2BanDpu,
    build_fail2ban_program,
    generate_packet_trace,
)
from repro.baseline import CpuCentricDatapath, CpuModel, OsModel
from repro.common.units import format_time
from repro.dpu import HyperionDpu
from repro.ebpf import Verifier
from repro.hw.net import Network
from repro.hw.nvme import Namespace, NvmeController
from repro.sim import Simulator

PACKETS = 2000
THRESHOLD = 3


def main() -> None:
    # One program, verified once, deployed twice.
    program = build_fail2ban_program(THRESHOLD)
    report = Verifier().verify(program)
    print(f"verifier: ok={report.ok}, "
          f"{report.states_explored} abstract states explored")

    trace = generate_packet_trace(PACKETS, attacker_fraction=0.1, seed=99)

    # --- Hyperion ---------------------------------------------------------
    sim = Simulator()
    dpu = HyperionDpu(sim, Network(sim), ssd_blocks=65536)
    sim.run_process(dpu.boot())
    app = Fail2BanDpu(sim, dpu, threshold=THRESHOLD)
    start = sim.now

    def dpu_run():
        for packet in trace:
            yield from app.process_packet(packet)
        yield from app.flush_log()

    sim.run_process(dpu_run())
    dpu_time = sim.now - start
    print(f"\nHyperion DPU: {PACKETS} packets in {format_time(dpu_time)} "
          f"({PACKETS / dpu_time / 1e6:.2f} Mpps)")
    print(f"  banned packets: {app.banned_packets}")
    print(f"  sources with failures: {len(app.banned_sources())}")
    print(f"  log blocks persisted on SSD: {app._log_lba}")

    # --- conventional server ----------------------------------------------
    sim = Simulator()
    cpu = CpuModel(sim)
    os_model = OsModel(sim, cpu)
    ssd = NvmeController(sim, "server-ssd")
    ssd.add_namespace(Namespace(1, 65536))
    baseline = Fail2BanBaseline(
        sim, CpuCentricDatapath(sim, cpu, os_model, ssd=ssd), threshold=THRESHOLD
    )
    start = sim.now

    def server_run():
        for packet in trace:
            yield from baseline.process_packet(packet)

    sim.run_process(server_run())
    server_time = sim.now - start
    print(f"\nCPU server:   {PACKETS} packets in {format_time(server_time)} "
          f"({PACKETS / server_time / 1e6:.2f} Mpps)")
    print(f"  banned packets: {baseline.banned_packets}")
    print(f"  syscalls: {os_model.syscalls}, interrupts: {os_model.interrupts}, "
          f"bytes copied: {os_model.bytes_copied}")

    assert app.banned_packets == baseline.banned_packets
    print(f"\nidentical verdicts; DPU is {server_time / dpu_time:.1f}x faster "
          f"end-to-end (no interrupts, no syscalls, no copies, no jitter)")


if __name__ == "__main__":
    main()
