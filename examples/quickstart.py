#!/usr/bin/env python3
"""Quickstart: boot a CPU-free DPU and exercise its whole stack.

Walks the blueprint end to end:

1. boot a Hyperion DPU standalone (JTAG self-test, on-fabric PCIe
   enumeration, single-level store mount) — no CPU anywhere;
2. allocate durable and ephemeral segments in the unified address space;
3. write an eBPF program, verify it, compile it to a hardware pipeline,
   and execute it at fixed latency;
4. load it into a reconfigurable slot through the ICAP;
5. persist the segment table, power-cycle, and recover.

Run: ``python examples/quickstart.py``
"""

from repro import HyperionDpu, Network, Simulator, assemble, compile_program
from repro.common.ids import ObjectId
from repro.common.units import format_time
from repro.hdl import HardwarePipeline


def main() -> None:
    sim = Simulator()
    net = Network(sim)

    # 1. Standalone boot.
    dpu = HyperionDpu(sim, net, ssd_blocks=16384)
    report = sim.run_process(dpu.boot())
    print(f"booted in {format_time(report.boot_time)}; "
          f"JTAG ok={report.jtag_ok}; SSDs={report.enumerated_ssds}")

    # 2. The single-level store: one namespace over DRAM + NVMe.
    durable = dpu.store.allocate(4096, durable=True, oid=ObjectId(42))
    scratch = dpu.store.allocate(4096)
    dpu.store.write(durable.oid, b"this outlives power loss")
    dpu.store.write(scratch.oid, b"this does not")
    print(f"durable segment at {durable.location.value}, "
          f"bus address {durable.bus_address:#x}")
    print(f"scratch segment at {scratch.location.value}, "
          f"bus address {scratch.bus_address:#x}")

    # 3. eBPF -> verifier -> HDL pipeline.
    program = assemble(
        """
        ; sum two 32-bit words from the input tuple
        ldxw r3, [r1+0]
        ldxw r4, [r1+4]
        mov r0, r3
        add r0, r4
        exit
        """,
        name="adder",
    )
    compiled = compile_program(program)
    print(f"compiled '{program.name}': depth={compiled.schedule.depth}, "
          f"II={compiled.schedule.initiation_interval}, "
          f"fmax={compiled.area.fmax_hz / 1e6:.0f} MHz, "
          f"LUTs={compiled.area.resources.luts}")
    pipeline = HardwarePipeline(sim, compiled)
    context = (7).to_bytes(4, "little") + (35).to_bytes(4, "little")

    def run_once():
        result = yield from pipeline.execute(context)
        return result.return_value

    print(f"pipeline(7, 35) = {sim.run_process(run_once())} "
          f"at fixed latency {format_time(pipeline.latency)}")

    # 4. Partial reconfiguration into a slot.
    bitstream = compiled.to_bitstream()
    slot = dpu.fabric.free_slot()

    def load():
        latency = yield from dpu.icap.load(slot, bitstream, tenant="quickstart")
        return latency

    latency = sim.run_process(load())
    print(f"loaded '{bitstream.name}' into slot {slot.index} "
          f"in {format_time(latency)} (paper band: 10-100 ms)")

    # 5. Persistence and recovery.
    dpu.store.persist_table()
    twin = dpu.power_cycle()
    recovery = sim.run_process(twin.boot(recover_store=True))
    recovered = twin.store.read(ObjectId(42), 24)
    print(f"after power loss: recovered {recovery.recovered_segments} "
          f"segment(s); contents: {recovered!r}")
    assert recovered == b"this outlives power loss"
    assert scratch.oid not in twin.store.table
    print("ephemeral segment gone, durable survived — single-level store ok")


if __name__ == "__main__":
    main()
