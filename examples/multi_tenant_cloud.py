#!/usr/bin/env python3
"""Multi-tenant Hyperion: the §4(4) cloud questions, made concrete.

Three tenants share one DPU:

1. each compiles its own eBPF program and has it *signed* by the fleet
   authority — the OS-shell rejects anything unsigned or unencrypted;
2. the slot scheduler multiplexes the reconfigurable slots through the
   ICAP (10-100 ms timescales);
3. the weighted AXIS arbiter gives the premium tenant a 3x bandwidth
   share, so a noisy neighbour cannot starve it.

Run: ``python examples/multi_tenant_cloud.py``
"""

from repro.common.units import format_time
from repro.dpu import HyperionDpu, OsShell, SlotScheduler
from repro.ebpf import assemble
from repro.hdl import compile_program
from repro.hw.fpga.arbiter import WeightedAxisArbiter
from repro.hw.fpga.bitstream import BitstreamAuthority
from repro.hw.net import Network
from repro.sim import Simulator
from repro.transport import RpcClient, RpcServer, UdpSocket

TENANT_PROGRAMS = {
    "tenant-red": "ldxw r3, [r1+0]\nmov r0, r3\nadd r0, 1\nexit",
    "tenant-blue": "ldxw r3, [r1+0]\nmov r0, r3\nmul r0, 2\nexit",
    "tenant-green": "mov r0, 7\nexit",
}


def main() -> None:
    sim = Simulator()
    net = Network(sim)
    dpu = HyperionDpu(sim, net, num_slots=2, ssd_blocks=8192)
    sim.run_process(dpu.boot())

    # --- authorized bitstream loading over the network ----------------------
    authority = BitstreamAuthority(b"fleet-signing-key")
    shell = OsShell(
        sim, dpu, RpcServer(sim, UdpSocket(sim, net.endpoint("shell"))), authority
    )
    operator = RpcClient(sim, UdpSocket(sim, net.endpoint("operator")))

    def load(tenant, signed):
        slot = yield from operator.call(
            "shell", "shell.load", signed, tenant,
            request_size=signed.bitstream.size_bytes, response_size=16,
        )
        return slot

    print("loading signed tenant bitstreams (2 slots, 3 tenants):")
    signed_images = {}
    for tenant, source in TENANT_PROGRAMS.items():
        compiled = compile_program(assemble(source, name=tenant))
        signed_images[tenant] = authority.sign(compiled.to_bitstream())
    for tenant in ("tenant-red", "tenant-blue"):
        slot = sim.run_process(load(tenant, signed_images[tenant]))
        print(f"  {tenant} -> slot {slot}")

    # The third tenant must wait: no free slots.
    try:
        sim.run_process(load("tenant-green", signed_images["tenant-green"]))
    except Exception as exc:
        print(f"  tenant-green rejected while full: {exc}")

    # An unsigned image is refused regardless of capacity.
    rogue = BitstreamAuthority(b"stolen-key").sign(
        signed_images["tenant-green"].bitstream
    )
    try:
        sim.run_process(load("mallory", rogue))
    except Exception as exc:
        print(f"  mallory's forged signature rejected: {exc}")
    print(f"shell stats: {shell.loads_accepted} accepted, "
          f"{shell.loads_rejected} rejected")

    # --- slot multiplexing through the scheduler ----------------------------
    print("\ntime-multiplexing the slots (ICAP partial reconfiguration):")
    scheduler = SlotScheduler(sim, dpu.fabric, dpu.icap)
    # Free one slot and let tenant-green in through the scheduler.
    dpu.fabric.slot_for("tenant-red").unload()
    request = scheduler.submit(
        "tenant-green", signed_images["tenant-green"].bitstream
    )
    sim.run()
    print(f"  tenant-green granted slot {request.slot_index} after "
          f"{format_time(request.wait_time)} (band: 10-100 ms)")

    # --- microarchitectural isolation on the interconnect -------------------
    print("\nweighted AXIS arbitration under contention (premium weight 3):")
    arbiter = WeightedAxisArbiter(sim, bandwidth=10e9)
    arbiter.register_tenant("premium", weight=3)
    arbiter.register_tenant("basic", weight=1)
    finish = {}

    def stream(tenant, size):
        yield from arbiter.transfer(tenant, size)
        finish[tenant] = sim.now

    start = sim.now
    sim.process(stream("premium", 30_000_000))
    sim.process(stream("basic", 10_000_000))
    sim.run()
    for tenant in ("premium", "basic"):
        share = arbiter.share_of(tenant)
        print(f"  {tenant:<8} moved {arbiter.bytes_served[tenant]:>11,} B "
              f"({share:.0%} share) in {format_time(finish[tenant] - start)}")
    print("  3:1 demand at 3:1 weights -> both finish together, by design")


if __name__ == "__main__":
    main()
