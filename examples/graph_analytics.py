#!/usr/bin/env python3
"""Graph analytics on a DPU — one of the paper's §4 "killer workloads".

A CSR graph lives in durable segments on a Hyperion DPU. The script runs
BFS shortest-path queries two ways (client-side frontier expansion vs
DPU-offloaded traversal), shows the k-hop neighbourhood query, and proves
the graph survives power loss because its segments are durable.

Run: ``python examples/graph_analytics.py``
"""

from repro.apps.graph import (
    CsrGraph,
    GraphService,
    client_side_bfs,
    offloaded_bfs,
    random_graph,
)
from repro.common.units import format_time
from repro.dpu import HyperionDpu
from repro.hw.net import Network
from repro.sim import Simulator
from repro.transport import RpcClient, RpcServer, UdpSocket

VERTICES = 300


def main() -> None:
    sim = Simulator()
    net = Network(sim, propagation=10e-6)
    dpu = HyperionDpu(sim, net, ssd_blocks=16384)
    sim.run_process(dpu.boot())

    graph = CsrGraph(dpu, VERTICES, random_graph(VERTICES, avg_degree=4))
    GraphService(
        sim, RpcServer(sim, UdpSocket(sim, net.endpoint("graph-dpu"))), graph
    )
    client = RpcClient(sim, UdpSocket(sim, net.endpoint("analyst")))
    print(f"graph: {VERTICES} vertices, {graph.edge_count} edges, "
          f"CSR in 2 durable segments on the DPU")

    def timed(fn, source, target):
        start = sim.now

        def proc():
            distance, rtts = yield from fn(client, "graph-dpu", source, target)
            return distance, rtts, sim.now - start

        return sim.run_process(proc())

    print(f"\nBFS shortest paths (one-way network delay: 10 us):")
    print(f"{'query':>12}  {'hops':>4}  {'client-side':>12}  {'RTTs':>5}  "
          f"{'offloaded':>10}  {'speedup':>7}")
    for target in (50, 150, 290):
        distance, rtts, chase_time = timed(client_side_bfs, 0, target)
        __, ___, offload_time = timed(offloaded_bfs, 0, target)
        print(f"{f'0 -> {target}':>12}  {distance:>4}  "
              f"{format_time(chase_time):>12}  {rtts:>5}  "
              f"{format_time(offload_time):>10}  "
              f"{chase_time / offload_time:>6.0f}x")

    def khop(source, hops):
        def proc():
            count = yield from client.call("graph-dpu", "graph.khop", source, hops)
            return count

        return sim.run_process(proc())

    print(f"\nk-hop neighbourhood of vertex 0 (LDBC-style): "
          f"{[khop(0, k) for k in (1, 2, 3)]} vertices at k=1,2,3")

    # Durability: the graph is data-at-rest in the single-level store.
    dpu.store.persist_table()
    twin = dpu.power_cycle()
    report = sim.run_process(twin.boot(recover_store=True))
    print(f"\npower cycle: {report.recovered_segments} graph segments "
          f"recovered from the boot area — the dataset needs no reload")


if __name__ == "__main__":
    main()
