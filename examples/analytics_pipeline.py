#!/usr/bin/env python3
"""The §2.3 end-to-end pipeline: Parquet on ext4-like FS on NVMe, no CPU.

Builds a columnar dataset, stores it as a HyperParquet file inside a
HyperExt file system on the DPU's flash, then answers an analytical query
two ways:

* **DPU**: the Spiffy-style annotation walker resolves the path, the
  footer picks the needed column chunks (projection + min/max pushdown),
  parallel NVMe reads fetch exactly those blocks, and the hardware kernel
  scans them;
* **CPU**: the host reads the whole file through syscalls and copies, then
  decodes and scans in software.

Run: ``python examples/analytics_pipeline.py``
"""

from repro.apps.analytics import AnalyticsQuery, cpu_scan, dpu_scan
from repro.baseline import CpuModel, OsModel
from repro.common.units import format_bytes, format_time
from repro.dpu import HyperionDpu
from repro.formats import RecordBatch, Schema, write_table
from repro.fs import HyperExtFs, ext4_annotation, generate_walker_code
from repro.hw.net import Network
from repro.sim import Simulator

ROWS = 20_000


def build_dataset() -> bytes:
    schema = Schema.of(order_id="int64", amount="float64", region="string")
    rows = [
        (i, (i % 997) * 0.25, ["eu", "us", "apac"][i % 3]) for i in range(ROWS)
    ]
    return write_table(RecordBatch.from_rows(schema, rows), rows_per_group=2048)


def main() -> None:
    sim = Simulator()
    dpu = HyperionDpu(sim, Network(sim), ssd_blocks=262144)
    sim.run_process(dpu.boot())

    # Lay the data out on a real file system on the DPU's flash.
    fs = HyperExtFs.mkfs(dpu.ssds[0].namespaces[1], inode_blocks=8)
    fs.mkdir("/warehouse")
    dataset = build_dataset()
    fs.create_file("/warehouse/orders.parquet", dataset)
    print(f"dataset: {ROWS} rows, {format_bytes(len(dataset))} as "
          f"/warehouse/orders.parquet")

    # The annotation the walker uses (generated accessor code shown too).
    code = generate_walker_code(ext4_annotation())
    print(f"annotation-generated accessor code: "
          f"{len(code.splitlines())} lines of C (excerpt below)")
    print("  " + "\n  ".join(code.splitlines()[:6]))

    query = AnalyticsQuery(
        path="/warehouse/orders.parquet",
        project=["amount"],
        aggregate_column="amount",
        aggregate="sum",
        predicate_column="order_id",
        predicate_low=5_000,
        predicate_high=9_999,
    )
    print(f"\nquery: SELECT sum(amount) WHERE order_id IN "
          f"[{query.predicate_low}, {query.predicate_high}]")

    def scenario():
        dpu_result = yield from dpu_scan(sim, dpu, fs, query)
        cpu = CpuModel(sim)
        cpu_result = yield from cpu_scan(
            sim, cpu, OsModel(sim, cpu), fs, query, controller=dpu.ssds[0]
        )
        return dpu_result, cpu_result

    dpu_result, cpu_result = sim.run_process(scenario())
    print(f"\n{'path':<12} {'answer':>14} {'time':>10} {'bytes moved':>12}")
    print(f"{'DPU':<12} {dpu_result.value:>14.2f} "
          f"{format_time(dpu_result.elapsed):>10} "
          f"{format_bytes(dpu_result.bytes_from_storage):>12}")
    print(f"{'CPU server':<12} {cpu_result.value:>14.2f} "
          f"{format_time(cpu_result.elapsed):>10} "
          f"{format_bytes(cpu_result.bytes_from_storage):>12}")
    assert abs(dpu_result.value - cpu_result.value) < 1e-6
    print(f"\nsame answer; DPU {cpu_result.elapsed / dpu_result.elapsed:.1f}x "
          f"faster with pushdown skipping "
          f"{ROWS - dpu_result.rows_scanned} of {ROWS} rows at the device")


if __name__ == "__main__":
    main()
