#!/usr/bin/env python3
"""A Corfu shared log on network-attached SSDs (paper §2.4, workload 3).

Three CPU-free services — a sequencer and two chain-replicated log units
backed by NVMe flash — serve concurrent writers. The script appends from
several clients, kills the head replica, and keeps reading.

Run: ``python examples/corfu_log.py``
"""

from repro.common.units import format_time
from repro.hw.net import Network
from repro.hw.nvme import Namespace, NvmeController
from repro.sim import Simulator
from repro.storage import CorfuClient, CorfuLogUnit, CorfuSequencer
from repro.transport import RpcClient, RpcServer, UdpSocket

WRITERS = 4
APPENDS_PER_WRITER = 25


def main() -> None:
    sim = Simulator()
    net = Network(sim)

    CorfuSequencer(RpcServer(sim, UdpSocket(sim, net.endpoint("sequencer"))))
    units = []
    for i in range(2):
        controller = NvmeController(sim, f"log-flash-{i}")
        controller.add_namespace(Namespace(1, 65536))
        units.append(CorfuLogUnit(
            sim, RpcServer(sim, UdpSocket(sim, net.endpoint(f"unit{i}"))),
            controller,
        ))

    clients = [
        CorfuClient(
            RpcClient(sim, UdpSocket(sim, net.endpoint(f"writer{i}"))),
            "sequencer", ["unit0", "unit1"],
        )
        for i in range(WRITERS)
    ]

    def writer(index, corfu):
        positions = []
        for i in range(APPENDS_PER_WRITER):
            position = yield from corfu.append(
                f"writer{index} event {i}".encode()
            )
            positions.append(position)
        return positions

    start = sim.now
    procs = [sim.process(writer(i, c)) for i, c in enumerate(clients)]
    sim.run()
    elapsed = sim.now - start
    total = WRITERS * APPENDS_PER_WRITER
    all_positions = sorted(p for proc in procs for p in proc.value)
    print(f"{WRITERS} writers appended {total} entries in "
          f"{format_time(elapsed)} ({total / elapsed:.0f} appends/s)")
    print(f"positions are unique and dense: "
          f"{all_positions == list(range(total))}")

    # Fault injection: lose the head replica mid-flight.
    print("\nkilling log unit 0 (chain head)...")
    units[0].fail()
    reader = clients[0]

    def read_some():
        samples = []
        for position in (0, total // 2, total - 1):
            data = yield from reader.read(position)
            samples.append((position, bytes(data[:24]).rstrip(b"\x00")))
        tail = yield from reader.tail()
        return samples, tail

    samples, tail = sim.run_process(read_some())
    for position, data in samples:
        print(f"  read[{position}] from replica: {data!r}")
    print(f"log tail: {tail}; reads survive the failure via replica 1")


if __name__ == "__main__":
    main()
