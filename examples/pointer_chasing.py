#!/usr/bin/env python3
"""Disaggregated pointer chasing: the paper's §2.4 latency argument, live.

A B+ tree lives on a network-attached Hyperion DPU. A client looks keys up
two ways:

* chasing node pointers itself — one network round trip per tree level;
* shipping the lookup to the DPU — one round trip total.

The script sweeps the tree size and prints the latency of both paths, plus
the LSM variant of the same argument (one round per run consulted).

Run: ``python examples/pointer_chasing.py``
"""

from repro.apps.pointer_chase import (
    RemoteTreeService,
    client_side_lookup,
    offloaded_lookup,
)
from repro.common.units import format_time
from repro.datastruct import LsmTree
from repro.hw.net import Network
from repro.sim import Simulator
from repro.transport import RpcClient, RpcServer, UdpSocket


def measure(keys: int, propagation: float):
    sim = Simulator()
    net = Network(sim, propagation=propagation)
    service = RemoteTreeService(
        sim, RpcServer(sim, UdpSocket(sim, net.endpoint("dpu"))), order=4
    )
    service.populate(keys)
    client = RpcClient(sim, UdpSocket(sim, net.endpoint("client")))
    key = keys // 2

    def timed(fn):
        start = sim.now

        def proc():
            value, rtts = yield from fn(client, "dpu", key)
            assert value == f"value-{key}"
            return sim.now - start, rtts

        return sim.run_process(proc())

    chase_time, chase_rtts = timed(client_side_lookup)
    offload_time, __ = timed(offloaded_lookup)
    return service.tree.height, chase_time, chase_rtts, offload_time


def main() -> None:
    print("B+ tree lookups over a 10 us (one-way) datacenter network:")
    print(f"{'keys':>8}  {'height':>6}  {'client-side':>12}  {'RTTs':>4}  "
          f"{'offloaded':>10}  {'speedup':>7}")
    for keys in (16, 128, 1024, 8192):
        height, chase, rtts, offload = measure(keys, propagation=10e-6)
        print(f"{keys:>8}  {height:>6}  {format_time(chase):>12}  {rtts:>4}  "
              f"{format_time(offload):>10}  {chase / offload:>6.1f}x")

    print()
    print("The same effect on an LSM tree (one round per run consulted):")
    lsm = LsmTree(memtable_limit=1000, l0_limit=100)
    lsm.put(b"old-key", b"buried")
    lsm.flush()
    for i in range(4):
        lsm.put(f"newer-{i}".encode(), b"x")
        lsm.flush()
    runs = lsm.search_cost(b"old-key")
    one_rtt = 2 * 10e-6
    print(f"  'old-key' sits under {runs} runs -> "
          f"{format_time(runs * one_rtt)} client-side vs "
          f"{format_time(one_rtt)} offloaded")


if __name__ == "__main__":
    main()
